#ifndef DISLOCK_CORE_WIRE_KEYS_H_
#define DISLOCK_CORE_WIRE_KEYS_H_

namespace dislock {
namespace wire {

// Single source of truth for the strings that cross the wire: JSON/SARIF
// keys, the DecisionMethod/DecisionStageId name tables, trace span names,
// and metric names. core/report.cc, analysis/emit.cc, the stats exporters
// (core/stats_export.h), and the instrumentation sites all reference these
// constants, so a key cannot drift between emitters — the fig4/fig5 golden
// tests pin the resulting bytes. docs/formats.md documents the schema;
// docs/observability.md documents the span/metric taxonomy.

// ---- Schema version -------------------------------------------------------
// Stamped as the first key of every top-level JSON document the repo emits
// (analyze --json, SARIF run properties, session lines, bench tables,
// metrics, traces). Bump on any incompatible key change.
inline constexpr int kSchemaVersion = 1;
inline constexpr char kSchemaVersionKey[] = "schema_version";

// ---- Decision method / stage wire names -----------------------------------
// Indexed by the integer value of DecisionMethod / DecisionStageId
// (core/decision/method.h, core/decision/stats.h); those headers document
// the same strings and DecisionMethodName()/DecisionStageName() serve them.
inline constexpr const char* kDecisionMethodNames[] = {
    "none",              // DecisionMethod::kNone
    "theorem-1",         // DecisionMethod::kTheorem1
    "theorem-2",         // DecisionMethod::kTheorem2
    "corollary-2",       // DecisionMethod::kCorollary2
    "dominator-closure", // DecisionMethod::kDominatorClosure
    "sat-exhaustive",    // DecisionMethod::kSatExhaustive
    "exhaustive",        // DecisionMethod::kExhaustive
};
inline constexpr int kNumDecisionMethodNames =
    sizeof(kDecisionMethodNames) / sizeof(kDecisionMethodNames[0]);

inline constexpr const char* kDecisionStageNames[] = {
    "theorem1-scc",        // DecisionStageId::kTheorem1Scc
    "theorem2-two-site",   // DecisionStageId::kTheorem2TwoSite
    "corollary2-closure",  // DecisionStageId::kCorollary2Closure
    "sat-exhaustive",      // DecisionStageId::kSatExhaustive
    "brute-force-lemma1",  // DecisionStageId::kBruteForceLemma1
};
inline constexpr int kNumDecisionStageNames =
    sizeof(kDecisionStageNames) / sizeof(kDecisionStageNames[0]);

// ---- Pipeline stat keys (PipelineStatsToJson) -----------------------------
inline constexpr char kStage[] = "stage";
inline constexpr char kAttempts[] = "attempts";
inline constexpr char kDecided[] = "decided";
inline constexpr char kSkipped[] = "skipped";
inline constexpr char kBudgetExhausted[] = "budget_exhausted";
inline constexpr char kWork[] = "work";

// ---- Pair report keys (PairReportToJson) ----------------------------------
inline constexpr char kVerdict[] = "verdict";
inline constexpr char kMethod[] = "method";
inline constexpr char kSites[] = "sites";
inline constexpr char kDNodes[] = "d_nodes";
inline constexpr char kDArcs[] = "d_arcs";
inline constexpr char kDStronglyConnected[] = "d_strongly_connected";
inline constexpr char kDetail[] = "detail";
inline constexpr char kPipeline[] = "pipeline";
inline constexpr char kCertificate[] = "certificate";

// ---- Certificate keys (CertificateToJson) ---------------------------------
inline constexpr char kDominator[] = "dominator";
inline constexpr char kT1[] = "t1";
inline constexpr char kT2[] = "t2";
inline constexpr char kSchedule[] = "schedule";
inline constexpr char kSeparatesAbove[] = "separates_above";
inline constexpr char kSeparatesBelow[] = "separates_below";

// ---- Multi report keys (MultiReportToJson) --------------------------------
inline constexpr char kPairsChecked[] = "pairs_checked";
inline constexpr char kPairsCached[] = "pairs_cached";
inline constexpr char kCyclesChecked[] = "cycles_checked";
inline constexpr char kFailingPair[] = "failing_pair";
inline constexpr char kFailingCycle[] = "failing_cycle";
inline constexpr char kDelta[] = "delta";

// ---- Delta stat keys (DeltaStatsToJson) -----------------------------------
inline constexpr char kTxnsAdded[] = "txns_added";
inline constexpr char kTxnsRemoved[] = "txns_removed";
inline constexpr char kTxnsReplaced[] = "txns_replaced";
inline constexpr char kPairsReused[] = "pairs_reused";
inline constexpr char kPairsRecomputed[] = "pairs_recomputed";
inline constexpr char kCyclesReused[] = "cycles_reused";
inline constexpr char kCyclesRecomputed[] = "cycles_recomputed";
inline constexpr char kFull[] = "full";

// ---- Deadlock report keys (DeadlockReportToJson) --------------------------
inline constexpr char kDeadlockFree[] = "deadlock_free";
inline constexpr char kStatesExplored[] = "states_explored";
inline constexpr char kDeadPrefix[] = "dead_prefix";
inline constexpr char kBlocked[] = "blocked";
inline constexpr char kTxn[] = "txn";
inline constexpr char kWaitsFor[] = "waits_for";

// ---- Analysis emitters (analysis/emit.cc) ---------------------------------
inline constexpr char kPasses[] = "passes";
inline constexpr char kDiagnostics[] = "diagnostics";
inline constexpr char kSeverity[] = "severity";
inline constexpr char kRule[] = "rule";
inline constexpr char kRuleName[] = "name";
inline constexpr char kOtherTxn[] = "other_txn";
inline constexpr char kStep[] = "step";
inline constexpr char kEntity[] = "entity";
inline constexpr char kMessage[] = "message";
inline constexpr char kFixHint[] = "fix_hint";
inline constexpr char kSummary[] = "summary";
inline constexpr char kErrors[] = "errors";
inline constexpr char kWarnings[] = "warnings";
inline constexpr char kNotes[] = "notes";
inline constexpr char kProperties[] = "properties";
inline constexpr char kDeadlockCertificate[] = "deadlock_certificate";

// ---- Rule catalog (RulesToJson) -------------------------------------------
inline constexpr char kRules[] = "rules";
inline constexpr char kId[] = "id";
inline constexpr char kCitation[] = "citation";

// ---- Repair report keys (RepairReportToJson) ------------------------------
inline constexpr char kRepair[] = "repair";
inline constexpr char kAttempted[] = "attempted";
inline constexpr char kBefore[] = "before";
inline constexpr char kAfter[] = "after";
inline constexpr char kSafety[] = "safety";
inline constexpr char kDeadlockUndecided[] = "deadlock_undecided";
inline constexpr char kCandidatesTried[] = "candidates_tried";
inline constexpr char kCandidatesVerified[] = "candidates_verified";
inline constexpr char kRepairs[] = "repairs";
inline constexpr char kKind[] = "kind";
inline constexpr char kTxns[] = "txns";
inline constexpr char kDescription[] = "description";
inline constexpr char kCost[] = "cost";
inline constexpr char kRepairedSystem[] = "repaired_system";

// ---- Serve protocol keys (dislock_serve, docs/serve.md) -------------------
// The serve wire protocol is the session JSON-lines protocol verbatim; these
// keys are the additions: sharding fields on the `stats` response and the
// queue/client fields of the load-driver summary. Pinned by wire_format_test.
inline constexpr char kShards[] = "shards";
inline constexpr char kShard[] = "shard";
inline constexpr char kClientId[] = "client";
inline constexpr char kClients[] = "clients";
inline constexpr char kQueueDepth[] = "queue_depth";
inline constexpr char kQueuePeak[] = "queue_peak";
inline constexpr char kCrossShardPairs[] = "cross_shard_pairs";
inline constexpr char kLocalShardPairs[] = "local_shard_pairs";
inline constexpr char kCrossShardRatio[] = "cross_shard_ratio";
inline constexpr char kShardTransactions[] = "shard_transactions";
inline constexpr char kCommands[] = "commands";
inline constexpr char kResponses[] = "responses";

// ---- Verdict-store keys (two-tier cache, docs/caching.md) -----------------
// The `cache` block of the session/serve `stats` response — present only
// when a persistent store is attached — and the matching dotted metric
// names below. Pinned by wire_format_test.
inline constexpr char kCache[] = "cache";
inline constexpr char kDiskHits[] = "disk_hits";
inline constexpr char kDiskMisses[] = "disk_misses";
inline constexpr char kRecordsLoaded[] = "records_loaded";
inline constexpr char kRecordsFlushed[] = "records_flushed";
inline constexpr char kRecordsDropped[] = "records_dropped";
inline constexpr char kDiskRecords[] = "disk_records";
inline constexpr char kCacheFileGeneration[] = "cache_file_generation";

// ---- Trace span taxonomy --------------------------------------------------
// Every TraceSpan in the engine uses one of these literals (plus
// "pool.task", which lives in util/thread_pool.cc because util sits below
// core). Per-stage spans are "stage." + kDecisionStageNames[s], served
// pre-joined by kStageSpanNames.
inline constexpr char kSpanPoolTask[] = "pool.task";
inline constexpr const char* kStageSpanNames[] = {
    "stage.theorem1-scc",       "stage.theorem2-two-site",
    "stage.corollary2-closure", "stage.sat-exhaustive",
    "stage.brute-force-lemma1",
};
inline constexpr char kSpanClosureDominators[] = "closure.dominators";
inline constexpr char kSpanClosureDominator[] = "closure.dominator";
inline constexpr char kSpanSatModels[] = "sat.models";
inline constexpr char kSpanMultiPairs[] = "multi.pairs";
inline constexpr char kSpanMultiCycles[] = "multi.cycles";
inline constexpr char kSpanIncrementalDiff[] = "incremental.diff";
inline constexpr char kSpanIncrementalInvalidate[] = "incremental.invalidate";
inline constexpr char kSpanIncrementalPairs[] = "incremental.pairs";
inline constexpr char kSpanIncrementalCycles[] = "incremental.cycles";
inline constexpr char kSpanSessionCommand[] = "session.command";
inline constexpr char kSpanPass[] = "analysis.pass";
inline constexpr char kSpanDeadlock[] = "deadlock.search";
inline constexpr char kSpanRepairCandidate[] = "repair.candidate";
inline constexpr char kSpanRepairVerify[] = "repair.verify";

// ---- Metric name taxonomy (dotted, for obs::StatsSink) --------------------
// Pipeline counters expand to "pipeline.<stage>.<counter>" with the stage
// and counter names above. The rest:
inline constexpr char kMetricCacheHits[] = "cache.hits";
inline constexpr char kMetricCacheMisses[] = "cache.misses";
inline constexpr char kMetricCacheSize[] = "cache.size";
inline constexpr char kMetricCacheHitRate[] = "cache.hit_rate";
// Tier-2 persistent store counters (cache/verdict_store.h), exported by
// the store's owner via ExportStoreStats.
inline constexpr char kMetricCacheDiskHits[] = "cache.disk_hits";
inline constexpr char kMetricCacheDiskMisses[] = "cache.disk_misses";
inline constexpr char kMetricCacheRecordsLoaded[] = "cache.records_loaded";
inline constexpr char kMetricCacheRecordsFlushed[] = "cache.records_flushed";
inline constexpr char kMetricCacheRecordsDropped[] = "cache.records_dropped";
inline constexpr char kMetricCacheDiskRecords[] = "cache.disk_records";
inline constexpr char kMetricCacheFileGeneration[] = "cache.file_generation";
inline constexpr char kMetricPipelinePrefix[] = "pipeline";
inline constexpr char kMetricPairPrefix[] = "pair";
inline constexpr char kMetricMultiPrefix[] = "multi";
inline constexpr char kMetricDeltaPrefix[] = "delta";
inline constexpr char kMetricAnalysisPrefix[] = "analysis";
inline constexpr char kMetricRepairPrefix[] = "repair";
inline constexpr char kMetricSessionCommands[] = "session.commands";
inline constexpr char kMetricSessionChecks[] = "session.checks";
inline constexpr char kMetricSessionErrors[] = "session.errors";
// Serve layer: service-wide counters plus per-shard gauges expanded as
// "shard.<i>.<name>" under kMetricShardPrefix.
inline constexpr char kMetricServeCommands[] = "serve.commands";
inline constexpr char kMetricServeResponses[] = "serve.responses";
inline constexpr char kMetricServeClients[] = "serve.clients";
inline constexpr char kMetricServeErrors[] = "serve.errors";
inline constexpr char kMetricServeQueuePeak[] = "serve.queue_peak";
inline constexpr char kMetricServeQueueDepth[] = "serve.queue_depth";
inline constexpr char kMetricShardPrefix[] = "shard";
inline constexpr char kMetricShardCount[] = "sharded.shards";
inline constexpr char kMetricCrossShardPairs[] = "sharded.cross_pairs";
inline constexpr char kMetricLocalShardPairs[] = "sharded.local_pairs";
inline constexpr char kMetricCrossShardRatio[] = "sharded.cross_ratio";
inline constexpr char kMetricShardTransactions[] = "transactions";
inline constexpr char kMetricShardPairStore[] = "pair_store";
inline constexpr char kMetricShardCycleStore[] = "cycle_store";

}  // namespace wire
}  // namespace dislock

#endif  // DISLOCK_CORE_WIRE_KEYS_H_
