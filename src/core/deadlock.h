#ifndef DISLOCK_CORE_DEADLOCK_H_
#define DISLOCK_CORE_DEADLOCK_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "txn/schedule.h"
#include "txn/system.h"
#include "util/status.h"

namespace dislock {

/// Deadlock analysis. The paper leaves distributed deadlocks open ("appear
/// to be subtle, and to require a different methodology"); the centralized
/// theory [7, 17] studies deadlock freedom side by side with safety, where
/// a deadlock is a reachable state of the geometric picture from which no
/// legal move exists. This module implements the operational counterpart
/// for any number of sites and transactions: an explicit search of the
/// reachable execution-state space.
///
/// A *state* is a set of executed steps (down-closed per transaction, lock
/// table implied). A state is *dead* iff it is not final and no step is
/// enabled. A system is deadlock-free iff no reachable state is dead.

/// Result of the deadlock-freedom decision.
struct DeadlockReport {
  bool deadlock_free = false;
  /// When a deadlock exists: a legal schedule PREFIX that reaches the dead
  /// state (executing it leaves every remaining step blocked).
  std::optional<Schedule> dead_prefix;
  /// The transactions blocked in the dead state and the entity each waits
  /// for (the waits-for witness), parallel vectors.
  std::vector<int> blocked_txns;
  std::vector<EntityId> waited_entities;
  /// Number of distinct reachable states explored.
  int64_t states_explored = 0;
};

/// Decides deadlock freedom by BFS over the reachable state space,
/// memoizing states (so each distinct state is expanded once). The state
/// space is the product of the transactions' down-set lattices —
/// exponential in general; `max_states` bounds the search
/// (ResourceExhausted beyond it).
Result<DeadlockReport> AnalyzeDeadlockFreedom(const TransactionSystem& system,
                                              int64_t max_states = 1 << 22);

/// Self-contained, machine-checkable witness of a reachable deadlock: the
/// legal schedule prefix plus the blocked-transaction/waited-entity lists of
/// the dead state it reaches. The analysis layer attaches one to every
/// DL201 diagnostic; VerifyDeadlockWitness replays it from scratch.
struct DeadlockCertificate {
  Schedule prefix;
  std::vector<int> blocked_txns;
  std::vector<EntityId> waited_entities;
};

/// Packages the witness of a non-deadlock-free report (requires
/// `report.dead_prefix` to be set).
DeadlockCertificate MakeDeadlockCertificate(const DeadlockReport& report);

/// Replays `cert.prefix` event by event — each step must be unexecuted,
/// order-ready, and enabled under the implied lock table — then checks that
/// the reached state is genuinely dead (not final, nothing enabled) and
/// that its blocked/waited lists match the certificate exactly. OK iff the
/// certificate proves the deadlock; InvalidArgument otherwise.
Status VerifyDeadlockWitness(const TransactionSystem& system,
                             const DeadlockCertificate& cert);

/// Human-readable rendering: the prefix in Fig. 1 notation plus one
/// "Ti waits for 'x'" line per blocked transaction.
std::string DeadlockCertificateToString(const DeadlockCertificate& cert,
                                        const TransactionSystem& system);

/// A pair of entities both transactions lock in (potentially) opposing
/// orders — the classic hold-and-wait precondition. x is the entity the
/// first transaction can lock first, y the one the second can.
struct OpposingLockOrder {
  EntityId x = kInvalidEntity;
  EntityId y = kInvalidEntity;
};

/// Finds the first (in entity order) pair of common entities whose lock
/// acquisitions can oppose between `ti` and `tj`, checked conservatively on
/// the partial orders exactly as OrderedLockAcquisition does. nullopt means
/// the pair's acquisition orders are provably compatible.
std::optional<OpposingLockOrder> FindOpposingLockOrder(const Transaction& ti,
                                                       const Transaction& tj);

/// Quick sufficient condition: if every pair of transactions acquires its
/// common entities' locks in a compatible order (no two transactions both
/// "lock x somewhere before locking y" and vice versa, over any compatible
/// total orders), no cyclic wait can form. Checked conservatively on the
/// partial orders: returns true only when, for every pair of transactions
/// and every pair of common entities {x, y}, the lock orders cannot oppose.
/// (One-way implication: true => deadlock-free; false says nothing.)
bool OrderedLockAcquisition(const TransactionSystem& system);

/// The waits-for digraph of a (possibly partial) execution state: an arc
/// Ti -> Tj iff Ti's next enabled-but-for-locks step needs an entity Tj
/// holds. Exposed for the simulator's deadlock detector and for tests.
/// `executed[i]` lists the steps of transaction i already executed (must be
/// down-closed; checked).
Result<Digraph> BuildWaitsForGraph(
    const TransactionSystem& system,
    const std::vector<std::vector<StepId>>& executed);

}  // namespace dislock

#endif  // DISLOCK_CORE_DEADLOCK_H_
