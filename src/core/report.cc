#include "core/report.h"

#include <sstream>

#include "core/certificate.h"
#include "core/wire_keys.h"

namespace dislock {

std::string JsonEscape(const std::string& s) {
  std::ostringstream out;
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  return out.str();
}

namespace {

std::string Quoted(const std::string& s) {
  std::string out = "\"";
  out += JsonEscape(s);
  out += "\"";
  return out;
}

// `"<key>": ` — every key below comes from core/wire_keys.h, so emitters
// cannot drift from each other (the fig4/fig5 goldens pin the bytes).
std::string Key(const char* name) {
  return std::string("\"") + name + "\": ";
}

}  // namespace

std::string CertificateToJson(const UnsafetyCertificate& cert,
                              const DistributedDatabase& db) {
  std::ostringstream out;
  out << "{" << Key(wire::kDominator) << "[";
  for (size_t i = 0; i < cert.dominator.size(); ++i) {
    if (i > 0) out << ", ";
    out << Quoted(db.NameOf(cert.dominator[i]));
  }
  out << "], " << Key(wire::kT1) << "[";
  for (size_t i = 0; i < cert.order1.size(); ++i) {
    if (i > 0) out << ", ";
    out << Quoted(cert.t1.StepString(cert.order1[i]));
  }
  out << "], " << Key(wire::kT2) << "[";
  for (size_t i = 0; i < cert.order2.size(); ++i) {
    if (i > 0) out << ", ";
    out << Quoted(cert.t2.StepString(cert.order2[i]));
  }
  TransactionSystem pair = MakePairSystem(cert.t1, cert.t2);
  out << "], " << Key(wire::kSchedule) << Quoted(cert.schedule.ToString(pair))
      << ", " << Key(wire::kSeparatesAbove)
      << Quoted(db.NameOf(cert.separation.above)) << ", "
      << Key(wire::kSeparatesBelow)
      << Quoted(db.NameOf(cert.separation.below)) << "}";
  return out.str();
}

std::string PipelineStatsToJson(const PipelineStats& stats) {
  std::ostringstream out;
  out << "[";
  for (int i = 0; i < kNumDecisionStages; ++i) {
    const StageCounters& c = stats.stages[static_cast<size_t>(i)];
    if (i > 0) out << ", ";
    out << "{" << Key(wire::kStage)
        << Quoted(DecisionStageName(static_cast<DecisionStageId>(i))) << ", "
        << Key(wire::kAttempts) << c.attempts << ", " << Key(wire::kDecided)
        << c.decided << ", " << Key(wire::kSkipped) << c.skipped << ", "
        << Key(wire::kBudgetExhausted) << c.budget_exhausted << ", "
        << Key(wire::kWork) << c.work << "}";
  }
  out << "]";
  return out.str();
}

std::string PairReportToJson(const PairSafetyReport& report,
                             const DistributedDatabase& db) {
  std::ostringstream out;
  out << "{" << Key(wire::kVerdict) << Quoted(SafetyVerdictName(report.verdict))
      << ", " << Key(wire::kMethod) << Quoted(DecisionMethodName(report.method))
      << ", " << Key(wire::kSites) << report.sites_spanned << ", "
      << Key(wire::kDNodes) << report.d.graph.NumNodes() << ", "
      << Key(wire::kDArcs) << report.d.graph.NumArcs() << ", "
      << Key(wire::kDStronglyConnected)
      << (report.d_strongly_connected ? "true" : "false") << ", "
      << Key(wire::kDetail) << Quoted(report.detail) << ", "
      << Key(wire::kPipeline) << PipelineStatsToJson(report.pipeline) << ", "
      << Key(wire::kCertificate);
  if (report.certificate.has_value()) {
    out << CertificateToJson(*report.certificate, db);
  } else {
    out << "null";
  }
  out << "}";
  return out.str();
}

std::string DeltaStatsToJson(const DeltaStats& delta) {
  std::ostringstream out;
  out << "{" << Key(wire::kTxnsAdded) << delta.txns_added << ", "
      << Key(wire::kTxnsRemoved) << delta.txns_removed << ", "
      << Key(wire::kTxnsReplaced) << delta.txns_replaced << ", "
      << Key(wire::kPairsReused) << delta.pairs_reused << ", "
      << Key(wire::kPairsRecomputed) << delta.pairs_recomputed << ", "
      << Key(wire::kCyclesReused) << delta.cycles_reused << ", "
      << Key(wire::kCyclesRecomputed) << delta.cycles_recomputed << ", "
      << Key(wire::kFull) << (delta.full ? "true" : "false") << "}";
  return out.str();
}

std::string MultiReportToJson(const MultiSafetyReport& report,
                              const SystemView& view) {
  std::ostringstream out;
  out << "{" << Key(wire::kVerdict) << Quoted(SafetyVerdictName(report.verdict))
      << ", " << Key(wire::kPairsChecked) << report.pairs_checked << ", "
      << Key(wire::kPairsCached) << report.pairs_cached << ", "
      << Key(wire::kCyclesChecked) << report.cycles_checked << ", "
      << Key(wire::kFailingPair);
  if (report.failing_pair.has_value()) {
    out << "[" << Quoted(view.txn(report.failing_pair->first).name())
        << ", " << Quoted(view.txn(report.failing_pair->second).name())
        << "]";
  } else {
    out << "null";
  }
  out << ", " << Key(wire::kFailingCycle);
  if (!report.failing_cycle.empty()) {
    out << "[";
    for (size_t i = 0; i < report.failing_cycle.size(); ++i) {
      if (i > 0) out << ", ";
      out << Quoted(view.txn(report.failing_cycle[i]).name());
    }
    out << "]";
  } else {
    out << "null";
  }
  out << ", " << Key(wire::kPipeline) << PipelineStatsToJson(report.pipeline);
  if (report.delta.has_value()) {
    out << ", " << Key(wire::kDelta) << DeltaStatsToJson(*report.delta);
  }
  out << "}";
  return out.str();
}

std::string MultiReportToJson(const MultiSafetyReport& report,
                              const TransactionSystem& system) {
  return MultiReportToJson(report, system.View());
}

std::string DeadlockReportToJson(const DeadlockReport& report,
                                 const TransactionSystem& system) {
  std::ostringstream out;
  out << "{" << Key(wire::kDeadlockFree)
      << (report.deadlock_free ? "true" : "false") << ", "
      << Key(wire::kStatesExplored) << report.states_explored << ", "
      << Key(wire::kDeadPrefix);
  if (report.dead_prefix.has_value()) {
    out << Quoted(report.dead_prefix->ToString(system));
  } else {
    out << "null";
  }
  out << ", " << Key(wire::kBlocked) << "[";
  for (size_t i = 0; i < report.blocked_txns.size(); ++i) {
    if (i > 0) out << ", ";
    out << "{" << Key(wire::kTxn)
        << Quoted(system.txn(report.blocked_txns[i]).name()) << ", "
        << Key(wire::kWaitsFor)
        << Quoted(report.waited_entities[i] == kInvalidEntity
                      ? std::string("?")
                      : system.db().NameOf(report.waited_entities[i]))
        << "}";
  }
  out << "]}";
  return out.str();
}

std::string PairReportToText(const PairSafetyReport& report,
                             const DistributedDatabase& db) {
  std::ostringstream out;
  out << "verdict: " << SafetyVerdictName(report.verdict)
      << " (method: " << DecisionMethodName(report.method) << ", "
      << report.sites_spanned << " site(s))\n";
  out << "D(T1,T2): " << ConflictGraphToString(report.d, db) << "\n";
  if (!report.detail.empty()) out << "detail: " << report.detail << "\n";
  if (report.certificate.has_value()) {
    out << CertificateToString(*report.certificate, db);
  }
  return out.str();
}

}  // namespace dislock
