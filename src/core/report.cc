#include "core/report.h"

#include <sstream>

#include "core/certificate.h"

namespace dislock {

std::string JsonEscape(const std::string& s) {
  std::ostringstream out;
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  return out.str();
}

namespace {

std::string Quoted(const std::string& s) {
  std::string out = "\"";
  out += JsonEscape(s);
  out += "\"";
  return out;
}

}  // namespace

std::string CertificateToJson(const UnsafetyCertificate& cert,
                              const DistributedDatabase& db) {
  std::ostringstream out;
  out << "{\"dominator\": [";
  for (size_t i = 0; i < cert.dominator.size(); ++i) {
    if (i > 0) out << ", ";
    out << Quoted(db.NameOf(cert.dominator[i]));
  }
  out << "], \"t1\": [";
  for (size_t i = 0; i < cert.order1.size(); ++i) {
    if (i > 0) out << ", ";
    out << Quoted(cert.t1.StepString(cert.order1[i]));
  }
  out << "], \"t2\": [";
  for (size_t i = 0; i < cert.order2.size(); ++i) {
    if (i > 0) out << ", ";
    out << Quoted(cert.t2.StepString(cert.order2[i]));
  }
  TransactionSystem pair = MakePairSystem(cert.t1, cert.t2);
  out << "], \"schedule\": " << Quoted(cert.schedule.ToString(pair))
      << ", \"separates_above\": " << Quoted(db.NameOf(cert.separation.above))
      << ", \"separates_below\": " << Quoted(db.NameOf(cert.separation.below))
      << "}";
  return out.str();
}

std::string PipelineStatsToJson(const PipelineStats& stats) {
  std::ostringstream out;
  out << "[";
  for (int i = 0; i < kNumDecisionStages; ++i) {
    const StageCounters& c = stats.stages[static_cast<size_t>(i)];
    if (i > 0) out << ", ";
    out << "{\"stage\": "
        << Quoted(DecisionStageName(static_cast<DecisionStageId>(i)))
        << ", \"attempts\": " << c.attempts
        << ", \"decided\": " << c.decided << ", \"skipped\": " << c.skipped
        << ", \"budget_exhausted\": " << c.budget_exhausted
        << ", \"work\": " << c.work << "}";
  }
  out << "]";
  return out.str();
}

std::string PairReportToJson(const PairSafetyReport& report,
                             const DistributedDatabase& db) {
  std::ostringstream out;
  out << "{\"verdict\": " << Quoted(SafetyVerdictName(report.verdict))
      << ", \"method\": " << Quoted(DecisionMethodName(report.method))
      << ", \"sites\": " << report.sites_spanned
      << ", \"d_nodes\": " << report.d.graph.NumNodes()
      << ", \"d_arcs\": " << report.d.graph.NumArcs()
      << ", \"d_strongly_connected\": "
      << (report.d_strongly_connected ? "true" : "false")
      << ", \"detail\": " << Quoted(report.detail)
      << ", \"pipeline\": " << PipelineStatsToJson(report.pipeline)
      << ", \"certificate\": ";
  if (report.certificate.has_value()) {
    out << CertificateToJson(*report.certificate, db);
  } else {
    out << "null";
  }
  out << "}";
  return out.str();
}

std::string DeltaStatsToJson(const DeltaStats& delta) {
  std::ostringstream out;
  out << "{\"txns_added\": " << delta.txns_added
      << ", \"txns_removed\": " << delta.txns_removed
      << ", \"txns_replaced\": " << delta.txns_replaced
      << ", \"pairs_reused\": " << delta.pairs_reused
      << ", \"pairs_recomputed\": " << delta.pairs_recomputed
      << ", \"cycles_reused\": " << delta.cycles_reused
      << ", \"cycles_recomputed\": " << delta.cycles_recomputed
      << ", \"full\": " << (delta.full ? "true" : "false") << "}";
  return out.str();
}

std::string MultiReportToJson(const MultiSafetyReport& report,
                              const SystemView& view) {
  std::ostringstream out;
  out << "{\"verdict\": " << Quoted(SafetyVerdictName(report.verdict))
      << ", \"pairs_checked\": " << report.pairs_checked
      << ", \"pairs_cached\": " << report.pairs_cached
      << ", \"cycles_checked\": " << report.cycles_checked
      << ", \"failing_pair\": ";
  if (report.failing_pair.has_value()) {
    out << "[" << Quoted(view.txn(report.failing_pair->first).name())
        << ", " << Quoted(view.txn(report.failing_pair->second).name())
        << "]";
  } else {
    out << "null";
  }
  out << ", \"failing_cycle\": ";
  if (!report.failing_cycle.empty()) {
    out << "[";
    for (size_t i = 0; i < report.failing_cycle.size(); ++i) {
      if (i > 0) out << ", ";
      out << Quoted(view.txn(report.failing_cycle[i]).name());
    }
    out << "]";
  } else {
    out << "null";
  }
  out << ", \"pipeline\": " << PipelineStatsToJson(report.pipeline);
  if (report.delta.has_value()) {
    out << ", \"delta\": " << DeltaStatsToJson(*report.delta);
  }
  out << "}";
  return out.str();
}

std::string MultiReportToJson(const MultiSafetyReport& report,
                              const TransactionSystem& system) {
  return MultiReportToJson(report, system.View());
}

std::string DeadlockReportToJson(const DeadlockReport& report,
                                 const TransactionSystem& system) {
  std::ostringstream out;
  out << "{\"deadlock_free\": " << (report.deadlock_free ? "true" : "false")
      << ", \"states_explored\": " << report.states_explored
      << ", \"dead_prefix\": ";
  if (report.dead_prefix.has_value()) {
    out << Quoted(report.dead_prefix->ToString(system));
  } else {
    out << "null";
  }
  out << ", \"blocked\": [";
  for (size_t i = 0; i < report.blocked_txns.size(); ++i) {
    if (i > 0) out << ", ";
    out << "{\"txn\": " << Quoted(system.txn(report.blocked_txns[i]).name())
        << ", \"waits_for\": "
        << Quoted(report.waited_entities[i] == kInvalidEntity
                      ? std::string("?")
                      : system.db().NameOf(report.waited_entities[i]))
        << "}";
  }
  out << "]}";
  return out.str();
}

std::string PairReportToText(const PairSafetyReport& report,
                             const DistributedDatabase& db) {
  std::ostringstream out;
  out << "verdict: " << SafetyVerdictName(report.verdict)
      << " (method: " << DecisionMethodName(report.method) << ", "
      << report.sites_spanned << " site(s))\n";
  out << "D(T1,T2): " << ConflictGraphToString(report.d, db) << "\n";
  if (!report.detail.empty()) out << "detail: " << report.detail << "\n";
  if (report.certificate.has_value()) {
    out << CertificateToString(*report.certificate, db);
  }
  return out.str();
}

}  // namespace dislock
