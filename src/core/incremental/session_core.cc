#include "core/incremental/session_core.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "cache/verdict_store.h"
#include "core/decision/context.h"
#include "core/incremental/engine.h"
#include "core/incremental/sharded_catalog.h"
#include "core/report.h"
#include "core/stats_export.h"
#include "core/wire_keys.h"
#include "obs/json.h"
#include "obs/stats_sink.h"
#include "obs/trace.h"
#include "txn/catalog.h"
#include "txn/text_format.h"
#include "util/string_util.h"

namespace dislock {

namespace {

std::string StripComment(const std::string& line) {
  size_t hash = line.find('#');
  return Trim(hash == std::string::npos ? line : line.substr(0, hash));
}

std::string Quoted(const std::string& s) {
  return StrCat("\"", JsonEscape(s), "\"");
}

/// Every JSON line the session emits is individually versioned — the
/// line protocol has no enclosing document to carry the version.
std::string LineOpen() {
  return StrCat("{\"", wire::kSchemaVersionKey,
                "\": ", std::to_string(wire::kSchemaVersion), ", ");
}

std::string FormatRatio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", r);
  return buf;
}

constexpr char kHelp[] =
    "commands:\n"
    "  load <path>      parse a system file; (re)initializes the catalog\n"
    "  system           (JSON envelope only) inline system text in the\n"
    "                   \"block\"; (re)initializes the catalog like load\n"
    "  add              followed by a 'txn <name> ... end' block\n"
    "  remove <name>    remove the named transaction\n"
    "  replace <name>   followed by a 'txn ... end' block\n"
    "  check            incremental safety analysis\n"
    "  analyze          full pass diagnostics on the current snapshot\n"
    "  list             live transactions with their ids\n"
    "  stats            generation, store sizes, reuse totals (and the\n"
    "                   persistent verdict-cache counters when a store is\n"
    "                   attached)\n"
    "  help             this summary\n"
    "  quit | exit      stop\n";

// ---- Minimal JSON envelope decoding ---------------------------------------
// The input was already accepted by obs::IsValidJson, so these scanners can
// assume well-formed syntax and only extract / reject by shape.

size_t SkipWs(const std::string& s, size_t i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                          s[i] == '\r')) {
    ++i;
  }
  return i;
}

/// Decodes the escaped content of a JSON string starting at the opening
/// quote `s[i]`; advances `i` past the closing quote. Returns false only
/// for escapes IsValidJson accepts but we cannot represent (lone
/// surrogates).
bool DecodeJsonString(const std::string& s, size_t* i, std::string* out) {
  ++*i;  // opening quote
  while (s[*i] != '"') {
    if (s[*i] != '\\') {
      out->push_back(s[*i]);
      ++*i;
      continue;
    }
    ++*i;
    char e = s[*i];
    ++*i;
    switch (e) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        auto hex4 = [&s](size_t at) {
          uint32_t v = 0;
          for (int k = 0; k < 4; ++k) {
            char c = s[at + static_cast<size_t>(k)];
            v <<= 4;
            if (c >= '0' && c <= '9') v |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f') v |= static_cast<uint32_t>(c - 'a' + 10);
            else v |= static_cast<uint32_t>(c - 'A' + 10);
          }
          return v;
        };
        uint32_t cp = hex4(*i);
        *i += 4;
        if (cp >= 0xD800 && cp <= 0xDBFF) {
          if (*i + 6 <= s.size() && s[*i] == '\\' && s[*i + 1] == 'u') {
            uint32_t lo = hex4(*i + 2);
            if (lo >= 0xDC00 && lo <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              *i += 6;
            } else {
              return false;
            }
          } else {
            return false;
          }
        } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
          return false;
        }
        if (cp < 0x80) {
          out->push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
          out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
          out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
          out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
          out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
          out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
          out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
        break;
      }
      default: return false;  // unreachable on validated input
    }
  }
  ++*i;  // closing quote
  return true;
}

/// Advances `i` past one JSON value of any type.
void SkipJsonValue(const std::string& s, size_t* i) {
  *i = SkipWs(s, *i);
  char c = s[*i];
  if (c == '"') {
    std::string sink;
    DecodeJsonString(s, i, &sink);
    return;
  }
  if (c == '{' || c == '[') {
    char close = c == '{' ? '}' : ']';
    int depth = 0;
    bool in_string = false;
    for (;; ++*i) {
      char d = s[*i];
      if (in_string) {
        if (d == '\\') ++*i;
        else if (d == '"') in_string = false;
        continue;
      }
      if (d == '"') in_string = true;
      else if (d == c || (d == '{' || d == '[')) ++depth;
      else if (d == close || d == '}' || d == ']') {
        --depth;
        if (depth == 0) {
          ++*i;
          return;
        }
      }
    }
  }
  // number / true / false / null
  while (*i < s.size() && s[*i] != ',' && s[*i] != '}' && s[*i] != ']' &&
         s[*i] != ' ' && s[*i] != '\t' && s[*i] != '\n' && s[*i] != '\r') {
    ++*i;
  }
}

/// Extracts the cmd/arg/block strings from a validated top-level JSON
/// object. Rejects unknown keys and non-string values for known keys, so a
/// misspelled envelope fails loudly instead of silently dropping fields.
Status DecodeEnvelope(const std::string& s, SessionCommand* out) {
  size_t i = SkipWs(s, 0);
  ++i;  // '{'
  i = SkipWs(s, i);
  if (s[i] == '}') return Status::InvalidArgument(
      "JSON command line is missing \"cmd\"");
  bool have_cmd = false;
  for (;;) {
    i = SkipWs(s, i);
    std::string key;
    if (!DecodeJsonString(s, &i, &key)) {
      return Status::InvalidArgument("invalid escape in JSON command key");
    }
    i = SkipWs(s, i);
    ++i;  // ':'
    i = SkipWs(s, i);
    std::string* dest = nullptr;
    if (key == "cmd") {
      dest = &out->verb;
      have_cmd = true;
    } else if (key == "arg") {
      dest = &out->arg;
    } else if (key == "block") {
      dest = &out->block;
    } else {
      return Status::InvalidArgument(
          StrCat("unknown JSON command key '", key, "'"));
    }
    if (s[i] != '"') {
      return Status::InvalidArgument(
          StrCat("JSON command key \"", key, "\" must be a string"));
    }
    if (!DecodeJsonString(s, &i, dest)) {
      return Status::InvalidArgument(
          StrCat("invalid escape in JSON command key \"", key, "\""));
    }
    i = SkipWs(s, i);
    if (s[i] == ',') {
      ++i;
      continue;
    }
    break;  // '}'
  }
  if (!have_cmd) {
    return Status::InvalidArgument("JSON command line is missing \"cmd\"");
  }
  return Status::OK();
}

}  // namespace

/// Everything one loaded system carries: the database (kept alive for the
/// catalog), and either the classic single-engine pair or a ShardedCatalog.
struct SessionCore::Backend {
  std::shared_ptr<DistributedDatabase> db;
  std::unique_ptr<TransactionCatalog> catalog;
  std::unique_ptr<EngineContext> ctx;
  std::unique_ptr<IncrementalSafetyEngine> engine;
  std::unique_ptr<ShardedCatalog> sharded;  ///< set iff options.shards > 1
};

class SessionCore::Impl {
 public:
  explicit Impl(const SessionOptions& options) : options_(options) {}

  Outcome Execute(const SessionCommand& cmd) {
    std::lock_guard<std::mutex> lock(mu_);
    Outcome out;
    ++commands_;
    std::ostringstream os;
    Status st;
    {
      obs::TraceSpan span(options_.config.trace, wire::kSpanSessionCommand);
      st = Dispatch(cmd, os);
    }
    if (!st.ok()) {
      ++errors_;
      out.failed = true;
      out.response = RenderErrorLocked(cmd.verb, st.message());
    } else {
      out.response = os.str();
    }
    return out;
  }

  bool StartsBlock(const std::string& verb, const std::string& arg,
                   std::string* error) const {
    error->clear();
    if (verb != "add" && verb != "replace") return false;
    std::lock_guard<std::mutex> lock(mu_);
    if (!Loaded()) {
      *error = "no system loaded (use: load <path>)";
      return false;
    }
    if (verb == "replace") {
      std::istringstream as(arg);
      std::string name;
      as >> name;
      if (name.empty()) {
        *error = "usage: replace <name>, then a txn block";
        return false;
      }
    }
    return true;
  }

  std::string RenderErrorResponse(const std::string& verb,
                                  const std::string& message) {
    std::lock_guard<std::mutex> lock(mu_);
    ++commands_;
    ++errors_;
    return RenderErrorLocked(verb, message);
  }

  int64_t commands() const {
    std::lock_guard<std::mutex> lock(mu_);
    return commands_;
  }
  int64_t checks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return checks_;
  }
  int errors() const {
    std::lock_guard<std::mutex> lock(mu_);
    return errors_;
  }

  void ExportSessionStats() {
    std::lock_guard<std::mutex> lock(mu_);
    if (obs::StatsSink* sink = options_.config.stats) {
      sink->AddCounter(wire::kMetricSessionCommands, commands_);
      sink->AddCounter(wire::kMetricSessionChecks, checks_);
      sink->AddCounter(wire::kMetricSessionErrors, errors_);
    }
  }

  void ExportBackendStats(obs::StatsSink* sink) {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_.sharded != nullptr) state_.sharded->ExportStats(sink);
  }

 private:
  bool Loaded() const {
    return state_.catalog != nullptr || state_.sharded != nullptr;
  }

  std::string RenderErrorLocked(const std::string& verb,
                                const std::string& message) const {
    if (options_.json) {
      return StrCat(LineOpen(), "\"cmd\": ", Quoted(verb),
                    ", \"ok\": false, \"error\": ", Quoted(message), "}\n");
    }
    return StrCat("error: ", message, "\n");
  }

  Status Dispatch(const SessionCommand& cmd, std::ostringstream& out) {
    const std::string& verb = cmd.verb;
    if (verb == "load") return Load(cmd, out);
    if (verb == "system") return System(cmd, out);
    if (verb == "add") return Add(cmd, out);
    if (verb == "remove") return Remove(cmd, out);
    if (verb == "replace") return Replace(cmd, out);
    if (verb == "check") return Check(out);
    if (verb == "analyze") return Analyze(out);
    if (verb == "list") return List(out);
    if (verb == "stats") return Stats(out);
    if (verb == "help") {
      if (options_.json) {
        out << LineOpen() << "\"cmd\": \"help\", \"ok\": true}\n";
      } else {
        out << kHelp;
      }
      return Status::OK();
    }
    return Status::InvalidArgument(
        StrCat("unknown command '", verb, "' (try 'help')"));
  }

  Status RequireLoaded() const {
    if (!Loaded()) {
      return Status::InvalidArgument("no system loaded (use: load <path>)");
    }
    return Status::OK();
  }

  std::string FirstToken(const std::string& arg) const {
    std::istringstream as(arg);
    std::string tok;
    as >> tok;
    return tok;
  }

  // ---- Backend dispatch helpers (single-engine vs sharded) ----
  int NumTransactions() const {
    return state_.sharded != nullptr ? state_.sharded->NumTransactions()
                                     : state_.catalog->NumTransactions();
  }
  int64_t Generation() const {
    return state_.sharded != nullptr ? state_.sharded->generation()
                                     : state_.catalog->generation();
  }
  CatalogSnapshot TakeSnapshot() const {
    return state_.sharded != nullptr ? state_.sharded->Snapshot()
                                     : state_.catalog->Snapshot();
  }
  const EngineTotals& Totals() const {
    return state_.sharded != nullptr ? state_.sharded->totals()
                                     : state_.engine->totals();
  }
  int64_t PairStoreSize() const {
    return state_.sharded != nullptr ? state_.sharded->PairStoreSize()
                                     : state_.engine->PairStoreSize();
  }
  int64_t CycleStoreSize() const {
    return state_.sharded != nullptr ? state_.sharded->CycleStoreSize()
                                     : state_.engine->CycleStoreSize();
  }

  /// (Re)initializes the backend from a parsed system — the shared tail of
  /// `load` and `system`. On error the previous backend stays live.
  Status InitBackend(const ParsedSystem& parsed) {
    Backend state;
    state.db = parsed.db;
    if (options_.shards > 1) {
      state.sharded = std::make_unique<ShardedCatalog>(
          state.db.get(), options_.shards, options_.config);
      for (int i = 0; i < parsed.system->NumTransactions(); ++i) {
        auto id = state.sharded->Add(parsed.system->txn(i));
        if (!id.ok()) return id.status();
      }
    } else {
      state.catalog = std::make_unique<TransactionCatalog>(state.db.get());
      for (int i = 0; i < parsed.system->NumTransactions(); ++i) {
        auto id = state.catalog->Add(parsed.system->txn(i));
        if (!id.ok()) return id.status();
      }
      state.ctx = std::make_unique<EngineContext>(options_.config);
      state.engine = std::make_unique<IncrementalSafetyEngine>(
          state.catalog.get(), state.ctx.get());
    }
    state_ = std::move(state);
    return Status::OK();
  }

  Status Load(const SessionCommand& cmd, std::ostringstream& out) {
    std::string path = FirstToken(cmd.arg);
    if (path.empty()) return Status::InvalidArgument("usage: load <path>");
    std::string resolved = path;
    if (!options_.load_root.empty() && path[0] != '/') {
      resolved = StrCat(options_.load_root, "/", path);
    }
    std::ifstream file(resolved);
    if (!file) return Status::NotFound(StrCat("cannot open ", path));
    std::ostringstream text;
    text << file.rdbuf();
    auto parsed = ParseSystemText(text.str());
    if (!parsed.ok()) return parsed.status();
    DISLOCK_RETURN_NOT_OK(InitBackend(*parsed));

    if (options_.json) {
      out << LineOpen() << "\"cmd\": \"load\", \"ok\": true, \"path\": "
          << Quoted(path) << ", \"transactions\": " << NumTransactions()
          << ", \"entities\": " << state_.db->NumEntities()
          << ", \"sites\": " << state_.db->NumSites() << "}\n";
    } else {
      out << "loaded " << path << ": " << NumTransactions()
          << " transactions, " << state_.db->NumEntities()
          << " entities over " << state_.db->NumSites() << " sites\n";
    }
    return Status::OK();
  }

  /// `system`: like `load`, but the full .dlk text arrives inline in the
  /// JSON envelope's "block" — the self-contained form trace replay uses,
  /// so a committed .dlt never depends on a file path existing. JSON-only:
  /// the text-mode block collector stops at the first `end` line, which
  /// would truncate a multi-transaction system.
  Status System(const SessionCommand& cmd, std::ostringstream& out) {
    if (cmd.block.empty()) {
      return Status::InvalidArgument(
          "system requires an inline system \"block\" (JSON envelope only)");
    }
    auto parsed = ParseSystemText(cmd.block);
    if (!parsed.ok()) return parsed.status();
    DISLOCK_RETURN_NOT_OK(InitBackend(*parsed));

    if (options_.json) {
      out << LineOpen() << "\"cmd\": \"system\", \"ok\": true, "
          << "\"transactions\": " << NumTransactions()
          << ", \"entities\": " << state_.db->NumEntities()
          << ", \"sites\": " << state_.db->NumSites() << "}\n";
    } else {
      out << "system: " << NumTransactions() << " transactions, "
          << state_.db->NumEntities() << " entities over "
          << state_.db->NumSites() << " sites\n";
    }
    return Status::OK();
  }

  Status Add(const SessionCommand& cmd, std::ostringstream& out) {
    DISLOCK_RETURN_NOT_OK(RequireLoaded());
    if (cmd.block.empty()) {
      return Status::InvalidArgument("unterminated txn block (missing 'end')");
    }
    auto txn = ParseTransactionText(cmd.block, *state_.db);
    if (!txn.ok()) return txn.status();
    std::string name = txn->name();
    Result<TxnId> id =
        state_.sharded != nullptr
            ? state_.sharded->Add(std::move(txn).value())
            : state_.catalog->Add(std::move(txn).value());
    if (!id.ok()) return id.status();
    if (options_.json) {
      out << LineOpen() << "\"cmd\": \"add\", \"ok\": true, \"name\": "
          << Quoted(name) << ", \"id\": " << *id << "}\n";
    } else {
      out << "added " << name << " (id " << *id << ")\n";
    }
    return Status::OK();
  }

  Status Remove(const SessionCommand& cmd, std::ostringstream& out) {
    DISLOCK_RETURN_NOT_OK(RequireLoaded());
    std::string name = FirstToken(cmd.arg);
    if (name.empty()) return Status::InvalidArgument("usage: remove <name>");
    DISLOCK_RETURN_NOT_OK(state_.sharded != nullptr
                              ? state_.sharded->RemoveByName(name)
                              : state_.catalog->RemoveByName(name));
    if (options_.json) {
      out << LineOpen() << "\"cmd\": \"remove\", \"ok\": true, \"name\": "
          << Quoted(name) << "}\n";
    } else {
      out << "removed " << name << "\n";
    }
    return Status::OK();
  }

  Status Replace(const SessionCommand& cmd, std::ostringstream& out) {
    DISLOCK_RETURN_NOT_OK(RequireLoaded());
    std::string name = FirstToken(cmd.arg);
    if (name.empty()) {
      return Status::InvalidArgument("usage: replace <name>, then a txn block");
    }
    if (cmd.block.empty()) {
      return Status::InvalidArgument("unterminated txn block (missing 'end')");
    }
    auto txn = ParseTransactionText(cmd.block, *state_.db);
    if (!txn.ok()) return txn.status();
    DISLOCK_RETURN_NOT_OK(
        state_.sharded != nullptr
            ? state_.sharded->ReplaceByName(name, std::move(txn).value())
            : state_.catalog->ReplaceByName(name, std::move(txn).value()));
    if (options_.json) {
      out << LineOpen() << "\"cmd\": \"replace\", \"ok\": true, \"name\": "
          << Quoted(name) << "}\n";
    } else {
      out << "replaced " << name << "\n";
    }
    return Status::OK();
  }

  Status Check(std::ostringstream& out) {
    DISLOCK_RETURN_NOT_OK(RequireLoaded());
    ++checks_;
    MultiSafetyReport report = state_.sharded != nullptr
                                   ? state_.sharded->Check()
                                   : state_.engine->Check();
    // Per-check report stats accumulate across the session (counters sum).
    ExportMultiReportStats(report, options_.config.stats);
    // Commands are serialized between Check and this render, so the
    // snapshot here has the dense order the report's indices refer to.
    CatalogSnapshot snap = TakeSnapshot();
    if (options_.json) {
      out << LineOpen() << "\"cmd\": \"check\", \"ok\": true, \"report\": "
          << MultiReportToJson(report, snap.View()) << "}\n";
      return Status::OK();
    }
    out << "verdict: " << SafetyVerdictName(report.verdict);
    if (report.failing_pair.has_value()) {
      out << " (failing pair: " << snap.txn(report.failing_pair->first).name()
          << ", " << snap.txn(report.failing_pair->second).name() << ")";
    } else if (!report.failing_cycle.empty()) {
      out << " (failing cycle:";
      for (size_t i = 0; i < report.failing_cycle.size(); ++i) {
        out << (i == 0 ? " " : " -> ")
            << snap.txn(report.failing_cycle[i]).name();
      }
      out << ")";
    }
    out << "\npairs: " << report.pairs_checked << " checked, "
        << report.pairs_cached << " cached; cycles: " << report.cycles_checked
        << " checked\n";
    const DeltaStats& d = *report.delta;
    out << "delta: ";
    if (d.full) {
      out << "full";
    } else {
      out << "+" << d.txns_added << " -" << d.txns_removed << " ~"
          << d.txns_replaced;
    }
    out << "; pairs " << d.pairs_recomputed << " recomputed, "
        << d.pairs_reused << " reused; cycles " << d.cycles_recomputed
        << " recomputed, " << d.cycles_reused << " reused\n";
    return Status::OK();
  }

  Status Analyze(std::ostringstream& out) {
    DISLOCK_RETURN_NOT_OK(RequireLoaded());
    if (!options_.analyze) {
      return Status::InvalidArgument(
          "analyze is not available: no analyzer wired into this session");
    }
    CatalogSnapshot snap = TakeSnapshot();
    std::string body = options_.analyze(snap, options_.config, options_.json);
    if (options_.json) {
      // `body` is already a JSON object; embed it verbatim.
      out << LineOpen() << "\"cmd\": \"analyze\", \"ok\": true, "
          << "\"analysis\": " << body << "}\n";
    } else {
      out << body;
    }
    return Status::OK();
  }

  Status List(std::ostringstream& out) {
    DISLOCK_RETURN_NOT_OK(RequireLoaded());
    CatalogSnapshot snap = TakeSnapshot();
    if (options_.json) {
      out << LineOpen() << "\"cmd\": \"list\", \"ok\": true, "
          << "\"transactions\": [";
      for (int i = 0; i < snap.NumTransactions(); ++i) {
        if (i > 0) out << ", ";
        out << "{\"id\": " << snap.id(i)
            << ", \"name\": " << Quoted(snap.txn(i).name()) << "}";
      }
      out << "]}\n";
      return Status::OK();
    }
    for (int i = 0; i < snap.NumTransactions(); ++i) {
      out << "[" << snap.id(i) << "] " << snap.txn(i).name() << "\n";
    }
    return Status::OK();
  }

  Status Stats(std::ostringstream& out) {
    DISLOCK_RETURN_NOT_OK(RequireLoaded());
    const EngineTotals& t = Totals();
    if (options_.json) {
      out << LineOpen() << "\"cmd\": \"stats\", \"ok\": true, "
          << "\"generation\": " << Generation()
          << ", \"transactions\": " << NumTransactions()
          << ", \"checks\": " << t.checks
          << ", \"pair_store\": " << PairStoreSize()
          << ", \"cycle_store\": " << CycleStoreSize()
          << ", \"totals\": {\"pairs_reused\": " << t.pairs_reused
          << ", \"pairs_recomputed\": " << t.pairs_recomputed
          << ", \"cycles_reused\": " << t.cycles_reused
          << ", \"cycles_recomputed\": " << t.cycles_recomputed << "}";
      if (state_.sharded != nullptr) {
        const ShardedCatalog& sc = *state_.sharded;
        out << ", \"" << wire::kShards << "\": " << sc.num_shards() << ", \""
            << wire::kShardTransactions << "\": [";
        std::vector<ShardStats> breakdown = sc.ShardBreakdown();
        for (size_t s = 0; s < breakdown.size(); ++s) {
          if (s > 0) out << ", ";
          out << breakdown[s].transactions;
        }
        out << "], \"" << wire::kCrossShardPairs
            << "\": " << sc.cross_pairs() << ", \"" << wire::kLocalShardPairs
            << "\": " << sc.local_pairs() << ", \"" << wire::kCrossShardRatio
            << "\": " << FormatRatio(sc.CrossShardRatio());
      }
      // The cache block appears exactly when a persistent store is
      // attached, so sessions without one keep their historical bytes.
      if (const cache::VerdictStore* store = options_.config.store) {
        cache::VerdictStore::Stats cs = store->stats();
        out << ", \"" << wire::kCache << "\": {\"" << wire::kDiskHits
            << "\": " << cs.disk_hits << ", \"" << wire::kDiskMisses
            << "\": " << cs.disk_misses << ", \"" << wire::kRecordsLoaded
            << "\": " << cs.records_loaded << ", \""
            << wire::kRecordsFlushed << "\": " << cs.records_flushed
            << ", \"" << wire::kRecordsDropped
            << "\": " << cs.records_dropped << ", \"" << wire::kDiskRecords
            << "\": " << store->disk_records() << ", \""
            << wire::kCacheFileGeneration << "\": " << store->generation()
            << "}";
      }
      out << "}\n";
      return Status::OK();
    }
    out << "generation: " << Generation()
        << "\ntransactions: " << NumTransactions() << "\nchecks: " << t.checks
        << "\npair store: " << PairStoreSize()
        << "; cycle store: " << CycleStoreSize() << "\ntotals: pairs "
        << t.pairs_recomputed << " recomputed, " << t.pairs_reused
        << " reused; cycles " << t.cycles_recomputed << " recomputed, "
        << t.cycles_reused << " reused\n";
    if (state_.sharded != nullptr) {
      const ShardedCatalog& sc = *state_.sharded;
      out << "shards: " << sc.num_shards() << "; transactions per shard:";
      for (const ShardStats& s : sc.ShardBreakdown()) {
        out << " " << s.transactions;
      }
      out << "\ncross-shard pairs: " << sc.cross_pairs() << " of "
          << sc.cross_pairs() + sc.local_pairs() << " (ratio "
          << FormatRatio(sc.CrossShardRatio()) << ")\n";
    }
    if (const cache::VerdictStore* store = options_.config.store) {
      cache::VerdictStore::Stats cs = store->stats();
      out << "persistent cache: " << cs.disk_hits << " disk hits, "
          << cs.disk_misses << " disk misses; " << store->disk_records()
          << " records on disk (" << cs.records_loaded << " loaded, "
          << cs.records_flushed << " flushed, " << cs.records_dropped
          << " dropped; generation " << store->generation() << ")\n";
    }
    return Status::OK();
  }

  const SessionOptions& options_;
  mutable std::mutex mu_;
  Backend state_;
  int64_t commands_ = 0;
  int64_t checks_ = 0;
  int errors_ = 0;
};

SessionCore::SessionCore(const SessionOptions& options)
    : options_(options), impl_(std::make_unique<Impl>(options_)) {}

SessionCore::~SessionCore() = default;

SessionCore::Outcome SessionCore::Execute(const SessionCommand& cmd) {
  return impl_->Execute(cmd);
}

bool SessionCore::StartsBlock(const std::string& verb, const std::string& arg,
                              std::string* error) const {
  return impl_->StartsBlock(verb, arg, error);
}

std::string SessionCore::RenderErrorResponse(const std::string& verb,
                                             const std::string& message) {
  return impl_->RenderErrorResponse(verb, message);
}

int64_t SessionCore::commands() const { return impl_->commands(); }
int64_t SessionCore::checks() const { return impl_->checks(); }
int SessionCore::errors() const { return impl_->errors(); }

void SessionCore::ExportSessionStats() { impl_->ExportSessionStats(); }

void SessionCore::ExportBackendStats(obs::StatsSink* sink) {
  impl_->ExportBackendStats(sink);
}

// ---- CommandAssembler -----------------------------------------------------

CommandAssembler::Step CommandAssembler::Consume(const std::string& raw) {
  Step step;
  const size_t max_line = core_->options().max_line_bytes;
  if (max_line > 0 && raw.size() > max_line) {
    std::string message = StrCat("oversized command line (", raw.size(),
                                 " bytes; limit ", max_line, ")");
    if (collecting_) {
      // Abandon the open block: a lost line would silently corrupt the
      // transaction, so the whole add/replace fails structurally.
      std::string verb = pending_.verb;
      collecting_ = false;
      pending_ = SessionCommand();
      step.response = core_->RenderErrorResponse(
          verb, StrCat(message, " inside txn block"));
      return step;
    }
    step.response = core_->RenderErrorResponse("input", message);
    return step;
  }
  if (collecting_) {
    pending_.block += raw;
    pending_.block += '\n';
    if (StripComment(raw) == "end") {
      collecting_ = false;
      step.command = std::move(pending_);
      pending_ = SessionCommand();
    }
    return step;
  }
  std::string trimmed = Trim(raw);
  if (!trimmed.empty() && trimmed[0] == '{') return JsonLine(trimmed);
  std::string line = StripComment(raw);
  if (line.empty()) return step;
  std::istringstream cmd(line);
  std::string verb;
  cmd >> verb;
  if (verb == "quit" || verb == "exit") {
    step.quit = true;
    return step;
  }
  std::string arg;
  std::getline(cmd, arg);
  SessionCommand c;
  c.verb = verb;
  c.arg = arg;
  std::string error;
  if (core_->StartsBlock(verb, arg, &error)) {
    collecting_ = true;
    pending_ = std::move(c);
    return step;
  }
  if (!error.empty()) {
    step.response = core_->RenderErrorResponse(verb, error);
    return step;
  }
  step.command = std::move(c);
  return step;
}

CommandAssembler::Step CommandAssembler::JsonLine(const std::string& line) {
  Step step;
  std::string jerr;
  if (!obs::IsValidJson(line, &jerr)) {
    step.response = core_->RenderErrorResponse(
        "input", StrCat("invalid JSON command line: ", jerr));
    return step;
  }
  SessionCommand cmd;
  Status decoded = DecodeEnvelope(line, &cmd);
  if (!decoded.ok()) {
    step.response = core_->RenderErrorResponse("input", decoded.message());
    return step;
  }
  if (cmd.verb == "quit" || cmd.verb == "exit") {
    step.quit = true;
    return step;
  }
  if (!cmd.block.empty() && cmd.verb != "add" && cmd.verb != "replace" &&
      cmd.verb != "system") {
    step.response = core_->RenderErrorResponse(
        cmd.verb, StrCat("JSON command '", cmd.verb,
                         "' does not take a \"block\""));
    return step;
  }
  if ((cmd.verb == "add" || cmd.verb == "replace") && cmd.block.empty()) {
    step.response = core_->RenderErrorResponse(
        cmd.verb,
        StrCat("JSON command '", cmd.verb, "' requires a \"block\""));
    return step;
  }
  step.command = std::move(cmd);
  return step;
}

std::optional<std::string> CommandAssembler::Finish() {
  if (!collecting_) return std::nullopt;
  std::string verb = pending_.verb;
  collecting_ = false;
  pending_ = SessionCommand();
  return core_->RenderErrorResponse(
      verb, "unterminated txn block (missing 'end')");
}

}  // namespace dislock
