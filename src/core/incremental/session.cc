#include "core/incremental/session.h"

#include <istream>
#include <ostream>
#include <string>

#include "core/incremental/session_core.h"

namespace dislock {

// The stream REPL is now a thin transport over the shared SessionCore +
// CommandAssembler (core/incremental/session_core.h): read a line, step the
// assembler, execute any ready command, write the rendered response. The
// serve layer (src/serve/) drives the same two classes from sockets; the
// bytes written here are golden-pinned and unchanged by the extraction.
int RunSession(std::istream& in, std::ostream& out,
               const SessionOptions& options) {
  SessionCore core(options);
  CommandAssembler assembler(&core);
  std::string raw;
  bool quit = false;
  while (!quit && std::getline(in, raw)) {
    CommandAssembler::Step step = assembler.Consume(raw);
    if (step.response.has_value()) out << *step.response;
    if (step.quit) {
      quit = true;
      break;
    }
    if (step.command.has_value()) {
      SessionCore::Outcome outcome = core.Execute(*step.command);
      out << outcome.response;
    }
  }
  if (!quit) {
    // EOF: surface a still-open txn block as the structured legacy error.
    if (auto unfinished = assembler.Finish(); unfinished.has_value()) {
      out << *unfinished;
    }
  }
  core.ExportSessionStats();
  return core.errors();
}

}  // namespace dislock
