#include "core/incremental/session.h"

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <utility>

#include "core/decision/context.h"
#include "core/incremental/engine.h"
#include "core/report.h"
#include "core/stats_export.h"
#include "core/wire_keys.h"
#include "obs/stats_sink.h"
#include "obs/trace.h"
#include "txn/catalog.h"
#include "txn/text_format.h"
#include "util/string_util.h"

namespace dislock {

namespace {

std::string StripComment(const std::string& line) {
  size_t hash = line.find('#');
  return Trim(hash == std::string::npos ? line : line.substr(0, hash));
}

/// Collects the lines of a `txn ... end` block following an add/replace
/// command, through the terminating `end`.
Result<std::string> ReadTxnBlock(std::istream& in) {
  std::string block;
  std::string raw;
  while (std::getline(in, raw)) {
    block += raw;
    block += '\n';
    if (StripComment(raw) == "end") return block;
  }
  return Status::InvalidArgument("unterminated txn block (missing 'end')");
}

/// Everything one loaded system carries: the database (kept alive for the
/// catalog), the catalog, and the engine watching it.
struct SessionState {
  std::shared_ptr<DistributedDatabase> db;
  std::unique_ptr<TransactionCatalog> catalog;
  std::unique_ptr<EngineContext> ctx;
  std::unique_ptr<IncrementalSafetyEngine> engine;
};

constexpr char kHelp[] =
    "commands:\n"
    "  load <path>      parse a system file; (re)initializes the catalog\n"
    "  add              followed by a 'txn <name> ... end' block\n"
    "  remove <name>    remove the named transaction\n"
    "  replace <name>   followed by a 'txn ... end' block\n"
    "  check            incremental safety analysis\n"
    "  analyze          full pass diagnostics on the current snapshot\n"
    "  list             live transactions with their ids\n"
    "  stats            generation, store sizes, reuse totals\n"
    "  help             this summary\n"
    "  quit | exit      stop\n";

class Session {
 public:
  Session(std::istream& in, std::ostream& out, const SessionOptions& options)
      : in_(in), out_(out), options_(options) {}

  int Run() {
    std::string raw;
    while (std::getline(in_, raw)) {
      std::string line = StripComment(raw);
      if (line.empty()) continue;
      std::istringstream cmd(line);
      std::string verb;
      cmd >> verb;
      if (verb == "quit" || verb == "exit") break;
      ++commands_;
      Status st;
      {
        obs::TraceSpan span(options_.config.trace, wire::kSpanSessionCommand);
        st = Dispatch(verb, &cmd);
      }
      if (!st.ok()) {
        ++errors_;
        if (options_.json) {
          out_ << LineOpen() << "\"cmd\": " << Quoted(verb)
               << ", \"ok\": false, "
               << "\"error\": " << Quoted(st.message()) << "}\n";
        } else {
          out_ << "error: " << st.message() << "\n";
        }
      }
    }
    if (obs::StatsSink* sink = options_.config.stats) {
      sink->AddCounter(wire::kMetricSessionCommands, commands_);
      sink->AddCounter(wire::kMetricSessionChecks, checks_);
      sink->AddCounter(wire::kMetricSessionErrors, errors_);
    }
    return errors_;
  }

 private:
  static std::string Quoted(const std::string& s) {
    return StrCat("\"", JsonEscape(s), "\"");
  }

  /// Every JSON line the session emits is individually versioned — the
  /// line protocol has no enclosing document to carry the version.
  static std::string LineOpen() {
    return StrCat("{\"", wire::kSchemaVersionKey,
                  "\": ", std::to_string(wire::kSchemaVersion), ", ");
  }

  Status Dispatch(const std::string& verb, std::istringstream* cmd) {
    if (verb == "load") return Load(cmd);
    if (verb == "add") return Add();
    if (verb == "remove") return Remove(cmd);
    if (verb == "replace") return Replace(cmd);
    if (verb == "check") return Check();
    if (verb == "analyze") return Analyze();
    if (verb == "list") return List();
    if (verb == "stats") return Stats();
    if (verb == "help") {
      if (options_.json) {
        out_ << LineOpen() << "\"cmd\": \"help\", \"ok\": true}\n";
      } else {
        out_ << kHelp;
      }
      return Status::OK();
    }
    return Status::InvalidArgument(
        StrCat("unknown command '", verb, "' (try 'help')"));
  }

  Status RequireLoaded() const {
    if (state_.catalog == nullptr) {
      return Status::InvalidArgument("no system loaded (use: load <path>)");
    }
    return Status::OK();
  }

  Status Load(std::istringstream* cmd) {
    std::string path;
    *cmd >> path;
    if (path.empty()) return Status::InvalidArgument("usage: load <path>");
    std::string resolved = path;
    if (!options_.load_root.empty() && path[0] != '/') {
      resolved = StrCat(options_.load_root, "/", path);
    }
    std::ifstream file(resolved);
    if (!file) return Status::NotFound(StrCat("cannot open ", path));
    std::ostringstream text;
    text << file.rdbuf();
    auto parsed = ParseSystemText(text.str());
    if (!parsed.ok()) return parsed.status();

    SessionState state;
    state.db = parsed->db;
    state.catalog = std::make_unique<TransactionCatalog>(state.db.get());
    for (int i = 0; i < parsed->system->NumTransactions(); ++i) {
      auto id = state.catalog->Add(parsed->system->txn(i));
      if (!id.ok()) return id.status();
    }
    state.ctx = std::make_unique<EngineContext>(options_.config);
    state.engine = std::make_unique<IncrementalSafetyEngine>(
        state.catalog.get(), state.ctx.get());
    state_ = std::move(state);

    if (options_.json) {
      out_ << LineOpen() << "\"cmd\": \"load\", \"ok\": true, \"path\": "
           << Quoted(path)
           << ", \"transactions\": " << state_.catalog->NumTransactions()
           << ", \"entities\": " << state_.db->NumEntities()
           << ", \"sites\": " << state_.db->NumSites() << "}\n";
    } else {
      out_ << "loaded " << path << ": " << state_.catalog->NumTransactions()
           << " transactions, " << state_.db->NumEntities()
           << " entities over " << state_.db->NumSites() << " sites\n";
    }
    return Status::OK();
  }

  Status Add() {
    DISLOCK_RETURN_NOT_OK(RequireLoaded());
    auto block = ReadTxnBlock(in_);
    if (!block.ok()) return block.status();
    auto txn = ParseTransactionText(*block, *state_.db);
    if (!txn.ok()) return txn.status();
    std::string name = txn->name();
    auto id = state_.catalog->Add(std::move(txn).value());
    if (!id.ok()) return id.status();
    if (options_.json) {
      out_ << LineOpen() << "\"cmd\": \"add\", \"ok\": true, \"name\": "
           << Quoted(name)
           << ", \"id\": " << *id << "}\n";
    } else {
      out_ << "added " << name << " (id " << *id << ")\n";
    }
    return Status::OK();
  }

  Status Remove(std::istringstream* cmd) {
    DISLOCK_RETURN_NOT_OK(RequireLoaded());
    std::string name;
    *cmd >> name;
    if (name.empty()) return Status::InvalidArgument("usage: remove <name>");
    DISLOCK_RETURN_NOT_OK(state_.catalog->RemoveByName(name));
    if (options_.json) {
      out_ << LineOpen() << "\"cmd\": \"remove\", \"ok\": true, \"name\": "
           << Quoted(name) << "}\n";
    } else {
      out_ << "removed " << name << "\n";
    }
    return Status::OK();
  }

  Status Replace(std::istringstream* cmd) {
    DISLOCK_RETURN_NOT_OK(RequireLoaded());
    std::string name;
    *cmd >> name;
    if (name.empty()) {
      return Status::InvalidArgument("usage: replace <name>, then a txn block");
    }
    auto block = ReadTxnBlock(in_);
    if (!block.ok()) return block.status();
    auto txn = ParseTransactionText(*block, *state_.db);
    if (!txn.ok()) return txn.status();
    DISLOCK_RETURN_NOT_OK(
        state_.catalog->ReplaceByName(name, std::move(txn).value()));
    if (options_.json) {
      out_ << LineOpen() << "\"cmd\": \"replace\", \"ok\": true, \"name\": "
           << Quoted(name) << "}\n";
    } else {
      out_ << "replaced " << name << "\n";
    }
    return Status::OK();
  }

  Status Check() {
    DISLOCK_RETURN_NOT_OK(RequireLoaded());
    ++checks_;
    MultiSafetyReport report = state_.engine->Check();
    // Per-check report stats accumulate across the session (counters sum).
    ExportMultiReportStats(report, options_.config.stats);
    // The session is single-threaded between Check and this render, so the
    // snapshot here has the dense order the report's indices refer to.
    CatalogSnapshot snap = state_.catalog->Snapshot();
    if (options_.json) {
      out_ << LineOpen() << "\"cmd\": \"check\", \"ok\": true, \"report\": "
           << MultiReportToJson(report, snap.View()) << "}\n";
      return Status::OK();
    }
    out_ << "verdict: " << SafetyVerdictName(report.verdict);
    if (report.failing_pair.has_value()) {
      out_ << " (failing pair: " << snap.txn(report.failing_pair->first).name()
           << ", " << snap.txn(report.failing_pair->second).name() << ")";
    } else if (!report.failing_cycle.empty()) {
      out_ << " (failing cycle:";
      for (size_t i = 0; i < report.failing_cycle.size(); ++i) {
        out_ << (i == 0 ? " " : " -> ")
             << snap.txn(report.failing_cycle[i]).name();
      }
      out_ << ")";
    }
    out_ << "\npairs: " << report.pairs_checked << " checked, "
         << report.pairs_cached << " cached; cycles: "
         << report.cycles_checked << " checked\n";
    const DeltaStats& d = *report.delta;
    out_ << "delta: ";
    if (d.full) {
      out_ << "full";
    } else {
      out_ << "+" << d.txns_added << " -" << d.txns_removed << " ~"
           << d.txns_replaced;
    }
    out_ << "; pairs " << d.pairs_recomputed << " recomputed, "
         << d.pairs_reused << " reused; cycles " << d.cycles_recomputed
         << " recomputed, " << d.cycles_reused << " reused\n";
    return Status::OK();
  }

  Status Analyze() {
    DISLOCK_RETURN_NOT_OK(RequireLoaded());
    if (!options_.analyze) {
      return Status::InvalidArgument(
          "analyze is not available: no analyzer wired into this session");
    }
    CatalogSnapshot snap = state_.catalog->Snapshot();
    std::string body = options_.analyze(snap, options_.config, options_.json);
    if (options_.json) {
      // `body` is already a JSON object; embed it verbatim.
      out_ << LineOpen() << "\"cmd\": \"analyze\", \"ok\": true, "
           << "\"analysis\": " << body << "}\n";
    } else {
      out_ << body;
    }
    return Status::OK();
  }

  Status List() {
    DISLOCK_RETURN_NOT_OK(RequireLoaded());
    CatalogSnapshot snap = state_.catalog->Snapshot();
    if (options_.json) {
      out_ << LineOpen() << "\"cmd\": \"list\", \"ok\": true, "
           << "\"transactions\": [";
      for (int i = 0; i < snap.NumTransactions(); ++i) {
        if (i > 0) out_ << ", ";
        out_ << "{\"id\": " << snap.id(i)
             << ", \"name\": " << Quoted(snap.txn(i).name()) << "}";
      }
      out_ << "]}\n";
      return Status::OK();
    }
    for (int i = 0; i < snap.NumTransactions(); ++i) {
      out_ << "[" << snap.id(i) << "] " << snap.txn(i).name() << "\n";
    }
    return Status::OK();
  }

  Status Stats() {
    DISLOCK_RETURN_NOT_OK(RequireLoaded());
    const EngineTotals& t = state_.engine->totals();
    if (options_.json) {
      out_ << LineOpen() << "\"cmd\": \"stats\", \"ok\": true, "
           << "\"generation\": " << state_.catalog->generation()
           << ", \"transactions\": " << state_.catalog->NumTransactions()
           << ", \"checks\": " << t.checks
           << ", \"pair_store\": " << state_.engine->PairStoreSize()
           << ", \"cycle_store\": " << state_.engine->CycleStoreSize()
           << ", \"totals\": {\"pairs_reused\": " << t.pairs_reused
           << ", \"pairs_recomputed\": " << t.pairs_recomputed
           << ", \"cycles_reused\": " << t.cycles_reused
           << ", \"cycles_recomputed\": " << t.cycles_recomputed << "}}\n";
      return Status::OK();
    }
    out_ << "generation: " << state_.catalog->generation()
         << "\ntransactions: " << state_.catalog->NumTransactions()
         << "\nchecks: " << t.checks
         << "\npair store: " << state_.engine->PairStoreSize()
         << "; cycle store: " << state_.engine->CycleStoreSize()
         << "\ntotals: pairs " << t.pairs_recomputed << " recomputed, "
         << t.pairs_reused << " reused; cycles " << t.cycles_recomputed
         << " recomputed, " << t.cycles_reused << " reused\n";
    return Status::OK();
  }

  std::istream& in_;
  std::ostream& out_;
  const SessionOptions& options_;
  SessionState state_;
  int64_t commands_ = 0;
  int64_t checks_ = 0;
  int errors_ = 0;
};

}  // namespace

int RunSession(std::istream& in, std::ostream& out,
               const SessionOptions& options) {
  return Session(in, out, options).Run();
}

}  // namespace dislock
