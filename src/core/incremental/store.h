#ifndef DISLOCK_CORE_INCREMENTAL_STORE_H_
#define DISLOCK_CORE_INCREMENTAL_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/multi.h"
#include "txn/catalog.h"

namespace dislock {

class EngineContext;

/// Canonical key of a directed TxnId cycle: rotated so the smallest id
/// (unique — simple cycles repeat no vertex) comes first, direction
/// preserved. B_c is built from the cyclic subpath structure, so it is
/// invariant under rotation but not under reversal.
std::vector<TxnId> CanonicalCycleKey(const std::vector<TxnId>& cycle);

/// The verdict stores of one incremental engine — or of one shard of a
/// ShardedCatalog, where each shard owns the keys whose transactions all
/// live on it and the coordinator owns the cross-shard remainder. Plain
/// ordered maps: iteration is key order, so store contents (and everything
/// derived from them) are schedule-independent.
struct VerdictStore {
  /// Unordered pair key (first < second) -> full PairSafetyReport.
  std::map<std::pair<TxnId, TxnId>, PairSafetyReport> pairs;
  /// Canonical directed TxnId cycle -> HasCycle(B_c).
  std::map<std::vector<TxnId>, bool> cycles;

  void Clear() {
    pairs.clear();
    cycles.clear();
  }

  /// Drops exactly the entries that mention an edited id: the edited
  /// transactions' incident pairs and the cycles through them.
  void Invalidate(const std::unordered_set<TxnId>& edited);
};

/// Decides every pair whose key is missing from `store->pairs` — no early
/// exit, fanned out over `ctx`'s pool when it has one — and stores the
/// reports. `pairs[i]` are dense view indices, `keys[i]` the matching
/// unordered TxnId key. Returns the number recomputed (the rest reused).
/// Mirrors the batch path's per-pair config (cache stripped, serial
/// pipeline under a pool), so a stored report is bit-identical to the one
/// a scratch run would compute.
int64_t DecideDirtyPairs(const SystemView& view,
                         const std::vector<std::pair<int, int>>& pairs,
                         const std::vector<std::pair<TxnId, TxnId>>& keys,
                         EngineContext* ctx, VerdictStore* store);

/// Condition-(b) analogue: decides HasCycle(B_c) for every cycle of
/// `to_check` (dense-index cycles; `keys[i]` their canonical TxnId keys)
/// whose key is missing from `store->cycles`, and stores the bits — again
/// exhaustively, for store determinism. When the config selects the flat
/// kernel and there is dirty work, `checker()` is called (once) for the
/// shared FlatCycleChecker; a caller fans several stores out of one Check,
/// so the checker is built lazily and shared, never per store. Returns the
/// number recomputed.
int64_t DecideDirtyCycles(
    const SystemView& view, const std::vector<std::vector<int>>& to_check,
    const std::vector<std::vector<TxnId>>& keys,
    const std::function<const FlatCycleChecker*()>& checker,
    EngineContext* ctx, VerdictStore* store);

/// Builds the deterministic serial-replay scan over stored verdicts exactly
/// as a fresh-context scratch run would: fingerprint groups when the config
/// asks for a verdict cache (whose initial state in a fresh context is
/// empty, hence cached_safe is never set), singleton groups otherwise.
/// `report_of(p)` resolves pair index p to its stored report (which must
/// stay valid through the replay). Returns the scan and its group count.
std::pair<std::vector<ScanPair>, int> BuildStoredPairScan(
    const SystemView& view, const std::vector<std::pair<int, int>>& pairs,
    const std::function<const PairSafetyReport*(size_t)>& report_of,
    const EngineConfig& options);

}  // namespace dislock

#endif  // DISLOCK_CORE_INCREMENTAL_STORE_H_
