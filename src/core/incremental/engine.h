#ifndef DISLOCK_CORE_INCREMENTAL_ENGINE_H_
#define DISLOCK_CORE_INCREMENTAL_ENGINE_H_

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/incremental/delta.h"
#include "core/incremental/store.h"
#include "core/multi.h"
#include "txn/catalog.h"

namespace dislock {

/// Cumulative reuse accounting over the lifetime of one engine, summed from
/// the per-Check DeltaStats (the `dislock session` stats command prints
/// these).
struct EngineTotals {
  int64_t checks = 0;
  int64_t pairs_reused = 0;
  int64_t pairs_recomputed = 0;
  int64_t cycles_reused = 0;
  int64_t cycles_recomputed = 0;
};

/// Delta re-analysis of a TransactionCatalog: the engine watches the
/// catalog through snapshots and, on each Check(), re-runs the pair
/// decision procedure only for conflicting pairs whose membership changed
/// since the last Check, and re-examines only directed cycles of the
/// conflict graph G that contain an edited transaction.
///
/// Mechanism — no edit log is consumed. Transactions are shared immutably
/// (shared_ptr<const Transaction>) between catalog and snapshots, so two
/// snapshots can be diffed by pointer identity per TxnId: an id present in
/// both with the same pointer is untouched; a differing pointer is a
/// Replace; ids appearing/disappearing are Add/Remove. The engine keeps a
/// VerdictStore (core/incremental/store.h):
///   * a pair store keyed by the unordered {TxnId, TxnId} pair, holding the
///     full PairSafetyReport of every conflicting pair ever decided whose
///     two members are still live and unedited, and
///   * a cycle store keyed by the canonical rotation (smallest id first,
///     direction preserved) of a directed TxnId cycle of G, holding whether
///     its B_c graph had a cycle.
/// An edit to transaction t invalidates exactly the store entries that
/// mention t's id: its incident pairs and the cycles through it. For a
/// single-transaction edit that is at most degree_G(t) pairs, so
/// DeltaStats::pairs_recomputed <= degree(t) + 1 (the +1 absorbs an edit
/// that adds one new conflict edge).
///
/// Equivalence contract: Check() returns the same MultiSafetyReport —
/// verdict, failing pair/cycle, every counter, and the aggregated pipeline
/// statistics — as a from-scratch AnalyzeMultiSafety of the catalog's
/// materialization under a *fresh* EngineContext with the same config,
/// except for the extra `delta` block (absent on batch reports). This holds
/// because the batch path itself reduces by replaying the serial memoized
/// scan over computed verdicts (core/multi.h); the engine feeds that same
/// replay verdicts pulled from its stores, and fingerprint-equal pairs
/// provably have identical reports (cache/verdict_cache.h). A shared
/// external config.cache is deliberately NOT consulted: its pre-populated
/// entries are not reconstructible from the catalog alone and would break
/// the fresh-context equivalence.
///
/// Determinism: dirty pairs and cycles are recomputed exhaustively — no
/// early exit — so the store contents after a Check are a pure function of
/// (previous stores, catalog contents, config), and with them every report
/// field including DeltaStats is bit-identical at any thread count. The
/// cancellation short-circuit the batch path uses is unavailable here by
/// design: skipping work based on another thread's verdict would make the
/// stores schedule-dependent.
///
/// Not thread-safe (one Check at a time); Check() itself parallelizes
/// internally over the context's pool.
class IncrementalSafetyEngine {
 public:
  /// `catalog` and `ctx` must outlive the engine.
  IncrementalSafetyEngine(const TransactionCatalog* catalog,
                          EngineContext* ctx);

  /// Analyzes the catalog's current contents, reusing stored verdicts for
  /// everything no edit touched. The report carries DeltaStats in
  /// `report.delta`.
  MultiSafetyReport Check();

  /// Drops all stored verdicts and the remembered snapshot; the next
  /// Check() runs full (DeltaStats::full set).
  void Reset();

  const EngineTotals& totals() const { return totals_; }
  /// Number of pair verdicts currently held.
  int64_t PairStoreSize() const {
    return static_cast<int64_t>(store_.pairs.size());
  }
  /// Number of cycle memos currently held.
  int64_t CycleStoreSize() const {
    return static_cast<int64_t>(store_.cycles.size());
  }

  /// The engine's verdict stores and context, exposed for the sharded
  /// coordinator (core/incremental/sharded_catalog.h), which runs the
  /// diff/replay loop itself and uses each shard engine purely as a
  /// (store, context) home with shard-local Check() for free.
  VerdictStore* mutable_store() { return &store_; }
  EngineContext* ctx() { return ctx_; }

 private:
  const TransactionCatalog* catalog_;
  EngineContext* ctx_;

  /// TxnId -> definition at the previous Check, for pointer-identity
  /// diffing. Empty map with has_prev_==false before the first Check.
  std::unordered_map<TxnId, std::shared_ptr<const Transaction>> prev_;
  bool has_prev_ = false;

  VerdictStore store_;

  EngineTotals totals_;
};

}  // namespace dislock

#endif  // DISLOCK_CORE_INCREMENTAL_ENGINE_H_
