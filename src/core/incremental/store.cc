#include "core/incremental/store.h"

#include <algorithm>
#include <future>
#include <string>
#include <unordered_map>

#include "cache/verdict_cache.h"
#include "cache/verdict_store.h"
#include "core/decision/context.h"
#include "graph/cycles.h"
#include "util/thread_pool.h"

namespace dislock {

std::vector<TxnId> CanonicalCycleKey(const std::vector<TxnId>& cycle) {
  auto min_it = std::min_element(cycle.begin(), cycle.end());
  std::vector<TxnId> key;
  key.reserve(cycle.size());
  key.insert(key.end(), min_it, cycle.end());
  key.insert(key.end(), cycle.begin(), min_it);
  return key;
}

void VerdictStore::Invalidate(const std::unordered_set<TxnId>& edited) {
  if (edited.empty()) return;
  for (auto it = pairs.begin(); it != pairs.end();) {
    if (edited.count(it->first.first) != 0 ||
        edited.count(it->first.second) != 0) {
      it = pairs.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = cycles.begin(); it != cycles.end();) {
    bool touched = false;
    for (TxnId id : it->first) touched = touched || edited.count(id) != 0;
    if (touched) {
      it = cycles.erase(it);
    } else {
      ++it;
    }
  }
}

int64_t DecideDirtyPairs(const SystemView& view,
                         const std::vector<std::pair<int, int>>& pairs,
                         const std::vector<std::pair<TxnId, TxnId>>& keys,
                         EngineContext* ctx, VerdictStore* store) {
  std::vector<size_t> dirty;
  for (size_t p = 0; p < pairs.size(); ++p) {
    if (store->pairs.find(keys[p]) == store->pairs.end()) dirty.push_back(p);
  }

  // Mirror the batch path's per-pair config (core/multi.cc) so a stored
  // report is bit-identical to the one a scratch run would compute.
  const EngineConfig& options = ctx->config();
  ThreadPool* pool = ctx->pool();
  EngineConfig pair_config = options;
  pair_config.cache = nullptr;
  pair_config.enable_cache = false;
  pair_config.store = nullptr;
  if (pool != nullptr) pair_config.num_threads = 1;

  // All dirty pairs are computed — no early exit — so the store state
  // after this loop is thread-count-independent.
  std::vector<PairSafetyReport> dirty_reports(dirty.size());
  auto run_pair = [&](size_t d) {
    const std::pair<int, int>& p = pairs[dirty[d]];
    dirty_reports[d] =
        AnalyzePairSafety(view.txn(p.first), view.txn(p.second), pair_config);
  };
  if (pool != nullptr && dirty.size() > 1) {
    std::vector<std::future<void>> futures;
    futures.reserve(dirty.size());
    for (size_t d = 0; d < dirty.size(); ++d) {
      futures.push_back(pool->Submit([&, d] { run_pair(d); }));
    }
    for (auto& f : futures) f.get();
  } else {
    for (size_t d = 0; d < dirty.size(); ++d) run_pair(d);
  }
  // Contribute the freshly computed verdicts to the persistent tier-2
  // store. Write-only on purpose: the incremental path never *serves* a
  // verdict from the store (that would make check counters vary with
  // warmth — see docs/caching.md), but its work still warms the store for
  // batch runs and for the session's own `analyze` command. The serve
  // fleet's shards all reach the same store through their copied configs,
  // and the pending buffer dedups by fingerprint, so the flushed bytes are
  // independent of shard count and compute order.
  if (options.store != nullptr) {
    for (size_t d = 0; d < dirty.size(); ++d) {
      const std::pair<int, int>& p = pairs[dirty[d]];
      std::string fp =
          options.use_flat_kernel
              ? PairFingerprintFlat(view.txn(p.first), view.txn(p.second))
              : PairFingerprint(view.txn(p.first), view.txn(p.second));
      const PairSafetyReport& r = dirty_reports[d];
      CachedPairVerdict entry;
      entry.verdict = r.verdict;
      entry.method = r.method;
      entry.sites_spanned = r.sites_spanned;
      options.store->Put(fp, entry);
    }
  }
  for (size_t d = 0; d < dirty.size(); ++d) {
    store->pairs.emplace(keys[dirty[d]], std::move(dirty_reports[d]));
  }
  return static_cast<int64_t>(dirty.size());
}

int64_t DecideDirtyCycles(
    const SystemView& view, const std::vector<std::vector<int>>& to_check,
    const std::vector<std::vector<TxnId>>& keys,
    const std::function<const FlatCycleChecker*()>& checker,
    EngineContext* ctx, VerdictStore* store) {
  std::vector<size_t> dirty;
  for (size_t c = 0; c < to_check.size(); ++c) {
    if (store->cycles.find(keys[c]) == store->cycles.end()) dirty.push_back(c);
  }

  const EngineConfig& options = ctx->config();
  ThreadPool* pool = ctx->pool();
  const FlatCycleChecker* flat_checker = nullptr;
  if (options.use_flat_kernel && !dirty.empty() && checker) {
    flat_checker = checker();
  }

  // Again exhaustively, no early exit, for store determinism.
  std::vector<char> dirty_has_cycle(dirty.size(), 0);
  auto run_cycle = [&](size_t d) {
    const std::vector<int>& cycle = to_check[dirty[d]];
    dirty_has_cycle[d] = (flat_checker != nullptr
                              ? flat_checker->BcHasCycle(cycle)
                              : HasCycle(BuildCycleGraph(view, cycle)))
                             ? 1
                             : 0;
  };
  if (pool != nullptr && dirty.size() > 1) {
    constexpr size_t kChunk = 16;
    std::vector<std::future<void>> futures;
    for (size_t begin = 0; begin < dirty.size(); begin += kChunk) {
      size_t end = std::min(begin + kChunk, dirty.size());
      futures.push_back(pool->Submit([&, begin, end] {
        for (size_t d = begin; d < end; ++d) run_cycle(d);
      }));
    }
    for (auto& f : futures) f.get();
  } else {
    for (size_t d = 0; d < dirty.size(); ++d) run_cycle(d);
  }
  for (size_t d = 0; d < dirty.size(); ++d) {
    store->cycles.emplace(keys[dirty[d]], dirty_has_cycle[d] != 0);
  }
  return static_cast<int64_t>(dirty.size());
}

std::pair<std::vector<ScanPair>, int> BuildStoredPairScan(
    const SystemView& view, const std::vector<std::pair<int, int>>& pairs,
    const std::function<const PairSafetyReport*(size_t)>& report_of,
    const EngineConfig& options) {
  std::vector<ScanPair> scan;
  scan.reserve(pairs.size());
  int num_groups = 0;
  // Group exactly when a fresh batch context would own a cache: an
  // external cache, --cache, or a configured tier-2 store. Warmth plays no
  // role here (cached_safe is never set), so stored-scan replies are
  // byte-identical whether the store is cold, warm, or shared.
  if (options.cache != nullptr || options.enable_cache ||
      options.store != nullptr) {
    std::unordered_map<std::string, int> group_index;
    for (size_t p = 0; p < pairs.size(); ++p) {
      std::string fp = options.use_flat_kernel
                           ? PairFingerprintFlat(view.txn(pairs[p].first),
                                                 view.txn(pairs[p].second))
                           : PairFingerprint(view.txn(pairs[p].first),
                                             view.txn(pairs[p].second));
      auto [it, inserted] = group_index.emplace(std::move(fp), num_groups);
      if (inserted) ++num_groups;
      ScanPair sp;
      sp.txns = pairs[p];
      sp.group = it->second;
      sp.report = report_of(p);
      scan.push_back(sp);
    }
  } else {
    num_groups = static_cast<int>(pairs.size());
    for (size_t p = 0; p < pairs.size(); ++p) {
      ScanPair sp;
      sp.txns = pairs[p];
      sp.group = static_cast<int>(p);
      sp.report = report_of(p);
      scan.push_back(sp);
    }
  }
  return {std::move(scan), num_groups};
}

}  // namespace dislock
