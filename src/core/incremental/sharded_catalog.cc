#include "core/incremental/sharded_catalog.h"

#include <algorithm>
#include <future>
#include <optional>
#include <unordered_set>
#include <utility>

#include "core/decision/context.h"
#include "core/wire_keys.h"
#include "graph/cycles.h"
#include "obs/stats_sink.h"
#include "obs/trace.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace dislock {

ShardedCatalog::ShardedCatalog(const DistributedDatabase* db, int num_shards,
                               const EngineConfig& config)
    : db_(db), num_shards_(num_shards) {
  DISLOCK_CHECK(db != nullptr);
  DISLOCK_CHECK(num_shards >= 1);
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->catalog = std::make_unique<TransactionCatalog>(
        db, /*first_id=*/s, /*stride=*/num_shards);
    shard->ctx = std::make_unique<EngineContext>(config);
    shard->engine = std::make_unique<IncrementalSafetyEngine>(
        shard->catalog.get(), shard->ctx.get());
    shards_.push_back(std::move(shard));
  }
  coord_ctx_ = std::make_unique<EngineContext>(config);
  if (num_shards > 1) {
    shard_pool_ = std::make_unique<ThreadPool>(num_shards);
  }
}

ShardedCatalog::~ShardedCatalog() = default;

uint64_t ShardedCatalog::FootprintHash(const Transaction& txn) {
  // FNV-1a over the little-endian bytes of each sorted locked entity id.
  // Frozen: persisted traces must reshard identically forever.
  uint64_t h = 14695981039346656037ULL;
  for (EntityId e : txn.LockedEntities()) {
    uint64_t v = static_cast<uint64_t>(static_cast<int64_t>(e));
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFFU;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

int ShardedCatalog::ShardOfFootprint(const Transaction& txn) const {
  return static_cast<int>(FootprintHash(txn) %
                          static_cast<uint64_t>(num_shards_));
}

Result<TxnId> ShardedCatalog::Add(Transaction txn) {
  // Mirror TransactionCatalog's validation precedence (db, name, rules) so
  // sharded and unsharded sessions emit identical errors; name uniqueness
  // is checked globally here, then again shard-locally by the delegate.
  if (&txn.db() != db_) {
    return Status::InvalidArgument(StrCat(
        "transaction '", txn.name(), "' is over a different database object"));
  }
  if (by_name_.find(txn.name()) != by_name_.end()) {
    return Status::InvalidModel(
        StrCat("duplicate transaction name '", txn.name(), "'"));
  }
  int s = ShardOfFootprint(txn);
  std::string name = txn.name();
  auto id = shards_[static_cast<size_t>(s)]->catalog->Add(std::move(txn));
  if (!id.ok()) return id.status();
  by_name_.emplace(std::move(name), *id);
  order_.push_back(
      {*id, s, shards_[static_cast<size_t>(s)]->catalog->Find(*id)});
  ++generation_;
  return *id;
}

Status ShardedCatalog::Remove(TxnId id) {
  auto it = std::find_if(order_.begin(), order_.end(),
                         [id](const GlobalEntry& e) { return e.id == id; });
  if (it == order_.end()) {
    return Status::NotFound(StrCat("no live transaction with id ", id));
  }
  DISLOCK_RETURN_NOT_OK(shards_[static_cast<size_t>(it->shard)]->catalog->Remove(id));
  by_name_.erase(it->txn->name());
  order_.erase(it);
  ++generation_;
  return Status::OK();
}

Status ShardedCatalog::RemoveByName(const std::string& name) {
  auto named = by_name_.find(name);
  if (named == by_name_.end()) {
    return Status::NotFound(StrCat("no transaction named '", name, "'"));
  }
  return Remove(named->second);
}

Status ShardedCatalog::Replace(TxnId id, Transaction txn) {
  auto it = std::find_if(order_.begin(), order_.end(),
                         [id](const GlobalEntry& e) { return e.id == id; });
  if (it == order_.end()) {
    return Status::NotFound(StrCat("no live transaction with id ", id));
  }
  if (&txn.db() != db_) {
    return Status::InvalidArgument(StrCat(
        "transaction '", txn.name(), "' is over a different database object"));
  }
  auto named = by_name_.find(txn.name());
  if (named != by_name_.end() && named->second != id) {
    return Status::InvalidModel(
        StrCat("duplicate transaction name '", txn.name(), "'"));
  }
  // The shard assignment is sticky: the replacement stays on `it->shard`
  // even if its footprint now hashes elsewhere (see class docs).
  TransactionCatalog* catalog = shards_[static_cast<size_t>(it->shard)]->catalog.get();
  std::string old_name = it->txn->name();
  DISLOCK_RETURN_NOT_OK(catalog->Replace(id, std::move(txn)));
  by_name_.erase(old_name);
  it->txn = catalog->Find(id);
  by_name_.emplace(it->txn->name(), id);
  ++generation_;
  return Status::OK();
}

Status ShardedCatalog::ReplaceByName(const std::string& name,
                                     Transaction txn) {
  auto named = by_name_.find(name);
  if (named == by_name_.end()) {
    return Status::NotFound(StrCat("no transaction named '", name, "'"));
  }
  return Replace(named->second, std::move(txn));
}

CatalogSnapshot ShardedCatalog::Snapshot() const {
  std::vector<TxnId> ids;
  std::vector<std::shared_ptr<const Transaction>> txns;
  ids.reserve(order_.size());
  txns.reserve(order_.size());
  for (const GlobalEntry& e : order_) {
    ids.push_back(e.id);
    txns.push_back(e.txn);
  }
  return CatalogSnapshot(db_, generation_, std::move(ids), std::move(txns));
}

std::shared_ptr<const Transaction> ShardedCatalog::Find(TxnId id) const {
  for (const GlobalEntry& e : order_) {
    if (e.id == id) return e.txn;
  }
  return nullptr;
}

int ShardedCatalog::OwnerOfPair(const std::pair<TxnId, TxnId>& key) const {
  int sa = ShardOf(key.first);
  int sb = ShardOf(key.second);
  return sa == sb ? sa : num_shards_;
}

VerdictStore* ShardedCatalog::StoreOfOwner(int owner) {
  return owner == num_shards_
             ? &cross_store_
             : shards_[static_cast<size_t>(owner)]->engine->mutable_store();
}

EngineContext* ShardedCatalog::CtxOfOwner(int owner) {
  return owner == num_shards_ ? coord_ctx_.get()
                              : shards_[static_cast<size_t>(owner)]->ctx.get();
}

int64_t ShardedCatalog::PairStoreSize() const {
  int64_t n = static_cast<int64_t>(cross_store_.pairs.size());
  for (const auto& s : shards_) n += s->engine->PairStoreSize();
  return n;
}

int64_t ShardedCatalog::CycleStoreSize() const {
  int64_t n = static_cast<int64_t>(cross_store_.cycles.size());
  for (const auto& s : shards_) n += s->engine->CycleStoreSize();
  return n;
}

double ShardedCatalog::CrossShardRatio() const {
  int64_t total = local_pairs_ + cross_pairs_;
  return total == 0 ? 0.0
                    : static_cast<double>(cross_pairs_) /
                          static_cast<double>(total);
}

std::vector<ShardStats> ShardedCatalog::ShardBreakdown() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (int s = 0; s < num_shards_; ++s) {
    const Shard& shard = *shards_[static_cast<size_t>(s)];
    out.push_back({s, shard.catalog->NumTransactions(),
                   shard.engine->PairStoreSize(),
                   shard.engine->CycleStoreSize()});
  }
  return out;
}

void ShardedCatalog::ExportStats(obs::StatsSink* sink) const {
  if (sink == nullptr) return;
  sink->SetGauge(wire::kMetricShardCount, static_cast<double>(num_shards_));
  sink->AddCounter(wire::kMetricCrossShardPairs, cross_pairs_);
  sink->AddCounter(wire::kMetricLocalShardPairs, local_pairs_);
  sink->SetGauge(wire::kMetricCrossShardRatio, CrossShardRatio());
  for (const ShardStats& s : ShardBreakdown()) {
    obs::PrefixedSink shard_sink(
        StrCat(wire::kMetricShardPrefix, ".", std::to_string(s.shard)), sink);
    shard_sink.SetGauge(wire::kMetricShardTransactions,
                        static_cast<double>(s.transactions));
    shard_sink.SetGauge(wire::kMetricShardPairStore,
                        static_cast<double>(s.pair_store));
    shard_sink.SetGauge(wire::kMetricShardCycleStore,
                        static_cast<double>(s.cycle_store));
  }
}

MultiSafetyReport ShardedCatalog::Check() {
  const EngineConfig& options = coord_ctx_->config();
  CatalogSnapshot snap = Snapshot();
  SystemView view = snap.View();
  MultiSafetyReport report;
  DeltaStats delta;
  const int kCross = num_shards_;

  // ---- Diff against the previous Check by pointer identity per id —
  // the IncrementalSafetyEngine loop verbatim, at coordinator scope. ----
  std::optional<obs::TraceSpan> diff_span;
  diff_span.emplace(coord_ctx_->trace(), wire::kSpanIncrementalDiff);
  std::unordered_map<TxnId, std::shared_ptr<const Transaction>> cur;
  cur.reserve(static_cast<size_t>(snap.NumTransactions()));
  for (int i = 0; i < snap.NumTransactions(); ++i) {
    cur.emplace(snap.id(i), snap.txn_ptr(i));
  }
  std::unordered_set<TxnId> edited;
  if (!has_prev_) {
    delta.full = true;
  } else {
    for (const auto& [id, txn] : prev_) {
      auto it = cur.find(id);
      if (it == cur.end()) {
        ++delta.txns_removed;
        edited.insert(id);
      } else if (it->second.get() != txn.get()) {
        ++delta.txns_replaced;
        edited.insert(id);
      }
    }
    for (const auto& [id, txn] : cur) {
      if (prev_.find(id) == prev_.end()) ++delta.txns_added;
    }
  }
  diff_span.reset();

  // ---- Invalidate the edited keys in every store. A key lives in exactly
  // one store, so this drops exactly what the single engine would drop. ----
  std::optional<obs::TraceSpan> invalidate_span;
  invalidate_span.emplace(coord_ctx_->trace(), wire::kSpanIncrementalInvalidate);
  for (auto& s : shards_) s->engine->mutable_store()->Invalidate(edited);
  cross_store_.Invalidate(edited);
  invalidate_span.reset();

  // ---- Condition (a): bucket the conflicting pairs by owner, decide each
  // bucket's dirty keys on its shard (exhaustively — determinism), then
  // replay the one serial scan over the union of stores. ----
  std::optional<obs::TraceSpan> pairs_span;
  pairs_span.emplace(coord_ctx_->trace(), wire::kSpanIncrementalPairs);
  Digraph g = BuildTransactionConflictGraph(view);
  std::vector<std::pair<int, int>> pairs = ConflictingPairs(g);
  std::vector<std::pair<TxnId, TxnId>> keys;
  std::vector<int> owner_of(pairs.size());
  keys.reserve(pairs.size());
  std::vector<std::vector<std::pair<int, int>>> bucket_pairs(
      static_cast<size_t>(num_shards_) + 1);
  std::vector<std::vector<std::pair<TxnId, TxnId>>> bucket_keys(
      static_cast<size_t>(num_shards_) + 1);
  for (size_t p = 0; p < pairs.size(); ++p) {
    TxnId a = snap.id(pairs[p].first);
    TxnId b = snap.id(pairs[p].second);
    std::pair<TxnId, TxnId> key(std::min(a, b), std::max(a, b));
    keys.push_back(key);
    int owner = OwnerOfPair(key);
    owner_of[p] = owner;
    bucket_pairs[static_cast<size_t>(owner)].push_back(pairs[p]);
    bucket_keys[static_cast<size_t>(owner)].push_back(key);
  }
  int64_t cross_now =
      static_cast<int64_t>(bucket_pairs[static_cast<size_t>(kCross)].size());
  cross_pairs_ += cross_now;
  local_pairs_ += static_cast<int64_t>(pairs.size()) - cross_now;

  std::vector<int64_t> recomputed(static_cast<size_t>(num_shards_) + 1, 0);
  auto decide_bucket = [&](int owner) {
    recomputed[static_cast<size_t>(owner)] = DecideDirtyPairs(
        view, bucket_pairs[static_cast<size_t>(owner)],
        bucket_keys[static_cast<size_t>(owner)], CtxOfOwner(owner),
        StoreOfOwner(owner));
  };
  if (shard_pool_ != nullptr) {
    std::vector<std::future<void>> futures;
    for (int owner = 0; owner <= kCross; ++owner) {
      if (bucket_pairs[static_cast<size_t>(owner)].empty()) continue;
      futures.push_back(
          shard_pool_->Submit([&, owner] { decide_bucket(owner); }));
    }
    for (auto& f : futures) f.get();
  } else {
    for (int owner = 0; owner <= kCross; ++owner) decide_bucket(owner);
  }
  for (int owner = 0; owner <= kCross; ++owner) {
    delta.pairs_recomputed += recomputed[static_cast<size_t>(owner)];
  }
  delta.pairs_reused =
      static_cast<int64_t>(pairs.size()) - delta.pairs_recomputed;

  auto [scan, num_groups] = BuildStoredPairScan(
      view, pairs,
      [&](size_t p) {
        return &StoreOfOwner(owner_of[p])->pairs.at(keys[p]);
      },
      options);
  std::optional<size_t> failing = ReplayPairScan(scan, num_groups, {}, &report);
  pairs_span.reset();

  prev_ = std::move(cur);
  has_prev_ = true;

  if (!failing.has_value()) {
    // ---- Condition (b): same enumeration and replay as the single
    // engine; cycle keys bucketed by owner (a shard owns a cycle only when
    // every transaction on it lives there). ----
    obs::TraceSpan cycles_span(coord_ctx_->trace(), wire::kSpanIncrementalCycles);
    std::vector<std::vector<NodeId>> cycles =
        options.use_flat_kernel ? SimpleCyclesFlat(g, options.max_cycles)
                                : SimpleCycles(g, options.max_cycles);
    bool budget_exhausted =
        static_cast<int64_t>(cycles.size()) >= options.max_cycles;
    const size_t min_len = options.include_two_cycles ? 2 : 3;
    std::vector<std::vector<int>> to_check;
    for (const auto& cycle : cycles) {
      if (cycle.size() < min_len) continue;
      to_check.emplace_back(cycle.begin(), cycle.end());
    }
    std::vector<std::vector<TxnId>> cycle_keys;
    std::vector<int> cycle_owner(to_check.size());
    cycle_keys.reserve(to_check.size());
    std::vector<std::vector<std::vector<int>>> owner_cycles(
        static_cast<size_t>(num_shards_) + 1);
    std::vector<std::vector<std::vector<TxnId>>> owner_keys(
        static_cast<size_t>(num_shards_) + 1);
    for (size_t c = 0; c < to_check.size(); ++c) {
      std::vector<TxnId> ids;
      ids.reserve(to_check[c].size());
      for (int v : to_check[c]) ids.push_back(snap.id(v));
      int owner = ShardOf(ids[0]);
      for (TxnId id : ids) {
        if (ShardOf(id) != owner) {
          owner = kCross;
          break;
        }
      }
      cycle_owner[c] = owner;
      cycle_keys.push_back(CanonicalCycleKey(ids));
      owner_cycles[static_cast<size_t>(owner)].push_back(to_check[c]);
      owner_keys[static_cast<size_t>(owner)].push_back(cycle_keys.back());
    }

    // One FlatCycleChecker shared read-only across every bucket; built
    // eagerly (before the fan-out) iff some bucket has dirty work.
    bool any_dirty = false;
    for (size_t c = 0; c < to_check.size() && !any_dirty; ++c) {
      VerdictStore* store = StoreOfOwner(cycle_owner[c]);
      any_dirty = store->cycles.find(cycle_keys[c]) == store->cycles.end();
    }
    std::optional<FlatCycleChecker> flat_checker;
    if (options.use_flat_kernel && any_dirty) flat_checker.emplace(view, pairs);
    auto checker = [&]() -> const FlatCycleChecker* {
      return flat_checker.has_value() ? &*flat_checker : nullptr;
    };

    std::vector<int64_t> cycles_recomputed(
        static_cast<size_t>(num_shards_) + 1, 0);
    auto decide_cycles = [&](int owner) {
      cycles_recomputed[static_cast<size_t>(owner)] = DecideDirtyCycles(
          view, owner_cycles[static_cast<size_t>(owner)],
          owner_keys[static_cast<size_t>(owner)], checker, CtxOfOwner(owner),
          StoreOfOwner(owner));
    };
    if (shard_pool_ != nullptr) {
      std::vector<std::future<void>> futures;
      for (int owner = 0; owner <= kCross; ++owner) {
        if (owner_cycles[static_cast<size_t>(owner)].empty()) continue;
        futures.push_back(
            shard_pool_->Submit([&, owner] { decide_cycles(owner); }));
      }
      for (auto& f : futures) f.get();
    } else {
      for (int owner = 0; owner <= kCross; ++owner) decide_cycles(owner);
    }
    for (int owner = 0; owner <= kCross; ++owner) {
      delta.cycles_recomputed += cycles_recomputed[static_cast<size_t>(owner)];
    }
    delta.cycles_reused =
        static_cast<int64_t>(to_check.size()) - delta.cycles_recomputed;

    size_t first_acyclic = to_check.size();
    for (size_t c = 0; c < to_check.size(); ++c) {
      if (!StoreOfOwner(cycle_owner[c])->cycles.at(cycle_keys[c])) {
        first_acyclic = c;
        break;
      }
    }
    ReduceCycleScan(&to_check, first_acyclic, budget_exhausted, &report);
  }
  // else: condition (a) failed — cycles_reused/cycles_recomputed stay 0,
  // exactly like the single engine.

  report.delta = delta;
  ++totals_.checks;
  totals_.pairs_reused += delta.pairs_reused;
  totals_.pairs_recomputed += delta.pairs_recomputed;
  totals_.cycles_reused += delta.cycles_reused;
  totals_.cycles_recomputed += delta.cycles_recomputed;
  return report;
}

}  // namespace dislock
