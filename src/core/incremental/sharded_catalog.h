#ifndef DISLOCK_CORE_INCREMENTAL_SHARDED_CATALOG_H_
#define DISLOCK_CORE_INCREMENTAL_SHARDED_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/incremental/engine.h"
#include "core/incremental/store.h"
#include "core/multi.h"
#include "txn/catalog.h"

namespace dislock {

namespace obs {
class StatsSink;
}  // namespace obs

class EngineContext;
class ThreadPool;

/// Per-shard breakdown for the serve stats surface.
struct ShardStats {
  int shard = 0;
  int transactions = 0;
  int64_t pair_store = 0;
  int64_t cycle_store = 0;
};

/// A shard-per-core catalog: K TransactionCatalogs, each with its own
/// IncrementalSafetyEngine (store + context + optional verdict cache), plus
/// a small coordinator owning the cross-shard remainder. Motivated by
/// partial-replication designs — partition by data footprint so most work
/// stays partition-local (see docs/serve.md).
///
/// Placement: a transaction is routed to shard FootprintHash(txn) % K,
/// where FootprintHash is a stable FNV-1a hash of the sorted locked-entity
/// footprint — the same definition forever, pinned by tests, so a trace
/// replayed tomorrow shards identically. The assignment is decided once at
/// Add and kept across Replace (the replacement may change the footprint;
/// moving the transaction would change its id, and ids are the stable
/// handles). Shard s allocates TxnIds on the lane s, s+K, s+2K, ... — ids
/// are globally unique, never reused, and `id % K` recovers the shard.
///
/// Verdict ownership: the unordered pair {a, b} belongs to shard s when
/// both ids live on s, else to the coordinator's cross store; a directed
/// cycle belongs to a shard when every id on it does. The union of all
/// stores therefore holds exactly the keys a single unsharded engine would
/// hold — no key in two stores — which is what makes the merged report
/// byte-identical (see Check()).
///
/// Check() — the coordinator runs the SAME algorithm as
/// IncrementalSafetyEngine::Check over the merged snapshot (global
/// insertion order): diff by pointer identity, invalidate edited keys in
/// every store, decide dirty pairs/cycles exhaustively (fanned out
/// shard-per-worker, each shard deciding the dirty keys it owns against its
/// own store and context), then replay the one serial memoized scan over
/// the union of stores. Every decided verdict is a pure function of the
/// two (or k) transactions involved, so WHERE it was computed cannot change
/// it; the replay order and the store membership match the single-engine
/// run; hence verdict, counters, pipeline stats, and DeltaStats — the whole
/// report — are byte-identical to a 1-shard (or unsharded) run at any
/// thread count. Pinned by tests/sharded_catalog_test.cc differentially.
///
/// Not thread-safe: one mutation or Check at a time (the serve layer
/// sequences commands; Check parallelizes internally).
class ShardedCatalog {
 public:
  /// `db` must outlive the catalog. `num_shards >= 1`; `config` is used
  /// for every shard context and the coordinator context.
  ShardedCatalog(const DistributedDatabase* db, int num_shards,
                 const EngineConfig& config);
  ~ShardedCatalog();

  ShardedCatalog(const ShardedCatalog&) = delete;
  ShardedCatalog& operator=(const ShardedCatalog&) = delete;

  /// Stable FNV-1a hash of the sorted locked-entity footprint. Pure
  /// function of the footprint — independent of name, steps order, shard
  /// count, or process — pinned by tests so persisted traces reshard
  /// identically forever.
  static uint64_t FootprintHash(const Transaction& txn);

  /// The shard a fresh Add of `txn` would route to.
  int ShardOfFootprint(const Transaction& txn) const;
  /// The shard owning a live (lane-allocated) id.
  int ShardOf(TxnId id) const { return static_cast<int>(id % num_shards_); }

  // Mutations mirror TransactionCatalog's contracts and error messages
  // exactly (name uniqueness is global across shards).
  Result<TxnId> Add(Transaction txn);
  Status Remove(TxnId id);
  Status RemoveByName(const std::string& name);
  Status Replace(TxnId id, Transaction txn);
  Status ReplaceByName(const std::string& name, Transaction txn);

  /// Incremental safety analysis of the merged catalog; byte-identical to
  /// a single-engine run over the same command history (see class docs).
  MultiSafetyReport Check();

  /// Merged snapshot in global insertion order (Replace keeps its slot) —
  /// the dense order Check()'s report indices refer to.
  CatalogSnapshot Snapshot() const;

  int NumTransactions() const { return static_cast<int>(order_.size()); }
  /// +1 per successful mutation — equal to the generation a single catalog
  /// would have after the same command sequence.
  int64_t generation() const { return generation_; }
  int num_shards() const { return num_shards_; }
  const DistributedDatabase& db() const { return *db_; }

  std::shared_ptr<const Transaction> Find(TxnId id) const;

  const EngineTotals& totals() const { return totals_; }
  /// Pair verdicts held across all shard stores plus the cross store.
  int64_t PairStoreSize() const;
  int64_t CycleStoreSize() const;

  /// Conflicting-pair routing over all Checks so far: pairs whose verdict
  /// key was shard-local vs cross-shard. The serve stats surface reports
  /// cross_pairs / (cross + local) as the cross-shard ratio.
  int64_t local_pairs() const { return local_pairs_; }
  int64_t cross_pairs() const { return cross_pairs_; }
  double CrossShardRatio() const;

  std::vector<ShardStats> ShardBreakdown() const;

  /// Pours the sharding counters (wire_keys.h metric names) into `sink`.
  void ExportStats(obs::StatsSink* sink) const;

 private:
  struct Shard {
    std::unique_ptr<TransactionCatalog> catalog;
    std::unique_ptr<EngineContext> ctx;
    std::unique_ptr<IncrementalSafetyEngine> engine;
  };
  /// One live transaction in global insertion order. The shared_ptr mirrors
  /// the shard catalog's current definition (refreshed on Replace) so
  /// Snapshot() is O(n).
  struct GlobalEntry {
    TxnId id;
    int shard;
    std::shared_ptr<const Transaction> txn;
  };

  /// Owner of a pair key: the common shard, or num_shards_ for cross.
  int OwnerOfPair(const std::pair<TxnId, TxnId>& key) const;
  VerdictStore* StoreOfOwner(int owner);
  EngineContext* CtxOfOwner(int owner);

  const DistributedDatabase* db_;
  int num_shards_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<EngineContext> coord_ctx_;
  /// One worker per shard for the decide fan-out; null when K == 1.
  std::unique_ptr<ThreadPool> shard_pool_;
  /// Pair/cycle verdicts spanning two or more shards.
  VerdictStore cross_store_;

  std::vector<GlobalEntry> order_;
  std::map<std::string, TxnId> by_name_;
  int64_t generation_ = 0;

  /// Coordinator diff state, exactly as in IncrementalSafetyEngine.
  std::unordered_map<TxnId, std::shared_ptr<const Transaction>> prev_;
  bool has_prev_ = false;

  EngineTotals totals_;
  int64_t local_pairs_ = 0;
  int64_t cross_pairs_ = 0;
};

}  // namespace dislock

#endif  // DISLOCK_CORE_INCREMENTAL_SHARDED_CATALOG_H_
