#ifndef DISLOCK_CORE_INCREMENTAL_SESSION_CORE_H_
#define DISLOCK_CORE_INCREMENTAL_SESSION_CORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/incremental/session.h"

namespace dislock {

namespace obs {
class StatsSink;
}  // namespace obs

class DistributedDatabase;
class EngineContext;
class IncrementalSafetyEngine;
class ShardedCatalog;
class TransactionCatalog;

/// One fully assembled session command: a verb, the remainder of the
/// command line, and — for add/replace — the accompanying `txn ... end`
/// block (raw lines joined with '\n', including the terminating `end`).
struct SessionCommand {
  std::string verb;
  std::string arg;
  std::string block;
};

/// The transport-agnostic core of `dislock session` / `dislock_serve`: it
/// owns the catalog (single-engine, or a ShardedCatalog when
/// SessionOptions::shards > 1) and turns one assembled command into one
/// rendered response — the byte-exact text or JSON-lines output the
/// stream REPL has always produced, now producible from any transport.
/// The REPL (session.cc), the tests, and the serve layer (src/serve/)
/// all drive this one implementation.
///
/// Thread safety: every public method locks an internal mutex, so
/// connection threads may query assembly-time preconditions while a
/// sequencer thread executes. Commands themselves are serialized — one
/// Execute at a time — which is what makes a served trace deterministic;
/// Check() still parallelizes internally over the engine's pool.
class SessionCore {
 public:
  explicit SessionCore(const SessionOptions& options);
  ~SessionCore();

  SessionCore(const SessionCore&) = delete;
  SessionCore& operator=(const SessionCore&) = delete;

  struct Outcome {
    std::string response;  ///< rendered output, "" for silent success
    bool failed = false;
  };

  /// Executes one command and renders its response (never throws; any
  /// failure becomes the structured `error:` / {"ok": false} response and
  /// leaves the catalog unchanged).
  Outcome Execute(const SessionCommand& cmd);

  /// Assembly-time classification: true iff `verb` opens a `txn ... end`
  /// block here (add/replace with their preconditions met — mirroring the
  /// historical stream semantics, where e.g. `add` before `load` errors
  /// WITHOUT consuming the following lines). On a precondition failure
  /// returns false with `*error` set; on a plain non-block verb, false
  /// with `*error` empty.
  bool StartsBlock(const std::string& verb, const std::string& arg,
                   std::string* error) const;

  /// Renders (and counts) a failed command that never reached Execute —
  /// the assembler's structured errors: precondition failures, malformed
  /// JSON lines, oversized lines, EOF mid-block.
  std::string RenderErrorResponse(const std::string& verb,
                                  const std::string& message);

  const SessionOptions& options() const { return options_; }
  int64_t commands() const;
  int64_t checks() const;
  int errors() const;

  /// Pours session.commands/checks/errors into options().config.stats
  /// (the stream REPL calls this once at end-of-session).
  void ExportSessionStats();
  /// Pours the sharding counters into `sink`; no-op on the single-engine
  /// backend.
  void ExportBackendStats(obs::StatsSink* sink);

 private:
  struct Backend;

  class Impl;
  const SessionOptions options_;  ///< declared first: Impl borrows it
  std::unique_ptr<Impl> impl_;
};

/// Per-input-stream (per-connection) command assembly: feeds raw lines in,
/// produces at most one ready command or one pre-rendered error response
/// per line, and tracks the pending-block state. Blank lines and `#`
/// comments are consumed silently; a line whose first non-space byte is
/// `{` is a JSON envelope ({"cmd": ..., "arg": ..., "block": ...}) and is
/// validated/decoded here. Not thread-safe — one assembler per stream,
/// driven by that stream's reader.
class CommandAssembler {
 public:
  explicit CommandAssembler(SessionCore* core) : core_(core) {}

  struct Step {
    std::optional<SessionCommand> command;  ///< ready to Execute
    std::optional<std::string> response;    ///< pre-rendered error output
    bool quit = false;                      ///< quit/exit seen
  };

  /// Consumes one raw input line (no trailing newline).
  Step Consume(const std::string& raw);

  /// End of stream: returns the structured unterminated-block error if a
  /// `txn ... end` block was still open, nullopt otherwise.
  std::optional<std::string> Finish();

  bool collecting() const { return collecting_; }

 private:
  Step JsonLine(const std::string& line);

  SessionCore* core_;
  bool collecting_ = false;
  SessionCommand pending_;
};

}  // namespace dislock

#endif  // DISLOCK_CORE_INCREMENTAL_SESSION_CORE_H_
