#ifndef DISLOCK_CORE_INCREMENTAL_DELTA_H_
#define DISLOCK_CORE_INCREMENTAL_DELTA_H_

#include <cstdint>

namespace dislock {

/// What one incremental re-analysis actually did, versus what it reused
/// from the engine's stores. Attached to MultiSafetyReport::delta by the
/// IncrementalSafetyEngine; absent (nullopt) on batch analyses, so batch
/// JSON output is unchanged.
///
/// Every field is a pure function of (previous engine state, catalog
/// contents, config): the engine recomputes exactly the dirty work with no
/// early exit, so like the rest of the report these counters are
/// bit-identical at any thread count.
struct DeltaStats {
  /// Edits absorbed since the previous Check (0/0/0 with a set `full`
  /// flag on the first analysis of a catalog).
  int64_t txns_added = 0;
  int64_t txns_removed = 0;
  int64_t txns_replaced = 0;

  /// Conflicting pairs of the current conflict graph whose verdict was
  /// taken from the store vs decided by running the pair procedure now. A
  /// single-transaction edit dirties exactly the edited transaction's
  /// incident pairs, so pairs_recomputed <= degree(edited txn) + 1.
  int64_t pairs_reused = 0;
  int64_t pairs_recomputed = 0;

  /// Directed cycles of G examined by condition (b), split the same way.
  /// Both are 0 when condition (a) already failed (the batch scan would
  /// not have enumerated cycles either).
  int64_t cycles_reused = 0;
  int64_t cycles_recomputed = 0;

  /// True when nothing could be reused: the engine's first look at this
  /// catalog.
  bool full = false;
};

}  // namespace dislock

#endif  // DISLOCK_CORE_INCREMENTAL_DELTA_H_
