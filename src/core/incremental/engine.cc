#include "core/incremental/engine.h"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_set>

#include "core/decision/context.h"
#include "core/wire_keys.h"
#include "graph/cycles.h"
#include "obs/trace.h"

namespace dislock {

IncrementalSafetyEngine::IncrementalSafetyEngine(
    const TransactionCatalog* catalog, EngineContext* ctx)
    : catalog_(catalog), ctx_(ctx) {
  DISLOCK_CHECK(catalog != nullptr);
  DISLOCK_CHECK(ctx != nullptr);
}

void IncrementalSafetyEngine::Reset() {
  prev_.clear();
  has_prev_ = false;
  store_.Clear();
}

MultiSafetyReport IncrementalSafetyEngine::Check() {
  const EngineConfig& options = ctx_->config();
  CatalogSnapshot snap = catalog_->Snapshot();
  SystemView view = snap.View();
  MultiSafetyReport report;
  DeltaStats delta;

  // ---- Diff against the previous Check by pointer identity per id. ----
  std::optional<obs::TraceSpan> diff_span;
  diff_span.emplace(ctx_->trace(), wire::kSpanIncrementalDiff);
  std::unordered_map<TxnId, std::shared_ptr<const Transaction>> cur;
  cur.reserve(static_cast<size_t>(snap.NumTransactions()));
  for (int i = 0; i < snap.NumTransactions(); ++i) {
    cur.emplace(snap.id(i), snap.txn_ptr(i));
  }
  std::unordered_set<TxnId> edited;  // removed or replaced: invalidation set
  if (!has_prev_) {
    delta.full = true;
  } else {
    for (const auto& [id, txn] : prev_) {
      auto it = cur.find(id);
      if (it == cur.end()) {
        ++delta.txns_removed;
        edited.insert(id);
      } else if (it->second.get() != txn.get()) {
        ++delta.txns_replaced;
        edited.insert(id);
      }
    }
    for (const auto& [id, txn] : cur) {
      if (prev_.find(id) == prev_.end()) ++delta.txns_added;
    }
  }

  diff_span.reset();

  // ---- Invalidate exactly the store entries that mention an edited id:
  // the edited transaction's incident pairs and the cycles through it. ----
  std::optional<obs::TraceSpan> invalidate_span;
  invalidate_span.emplace(ctx_->trace(), wire::kSpanIncrementalInvalidate);
  store_.Invalidate(edited);
  invalidate_span.reset();

  // ---- Condition (a): decide the dirty conflicting pairs, reuse the
  // rest. ----
  std::optional<obs::TraceSpan> pairs_span;
  pairs_span.emplace(ctx_->trace(), wire::kSpanIncrementalPairs);
  Digraph g = BuildTransactionConflictGraph(view);
  std::vector<std::pair<int, int>> pairs = ConflictingPairs(g);
  std::vector<std::pair<TxnId, TxnId>> keys;
  keys.reserve(pairs.size());
  for (const auto& p : pairs) {
    TxnId a = snap.id(p.first);
    TxnId b = snap.id(p.second);
    keys.emplace_back(std::min(a, b), std::max(a, b));
  }
  delta.pairs_recomputed = DecideDirtyPairs(view, pairs, keys, ctx_, &store_);
  delta.pairs_reused =
      static_cast<int64_t>(pairs.size()) - delta.pairs_recomputed;

  // ---- Replay the serial memoized scan exactly as a fresh-context
  // scratch run would (core/incremental/store.h). ----
  auto [scan, num_groups] = BuildStoredPairScan(
      view, pairs,
      [&](size_t p) { return &store_.pairs.at(keys[p]); }, options);
  std::optional<size_t> failing = ReplayPairScan(scan, num_groups, {}, &report);
  pairs_span.reset();

  prev_ = std::move(cur);
  has_prev_ = true;

  if (!failing.has_value()) {
    // ---- Condition (b): examine the dirty cycles, reuse the rest. ----
    obs::TraceSpan cycles_span(ctx_->trace(), wire::kSpanIncrementalCycles);
    std::vector<std::vector<NodeId>> cycles =
        options.use_flat_kernel ? SimpleCyclesFlat(g, options.max_cycles)
                                : SimpleCycles(g, options.max_cycles);
    bool budget_exhausted =
        static_cast<int64_t>(cycles.size()) >= options.max_cycles;
    const size_t min_len = options.include_two_cycles ? 2 : 3;
    std::vector<std::vector<int>> to_check;
    for (const auto& cycle : cycles) {
      if (cycle.size() < min_len) continue;
      to_check.emplace_back(cycle.begin(), cycle.end());
    }
    std::vector<std::vector<TxnId>> cycle_keys;
    cycle_keys.reserve(to_check.size());
    for (const auto& cycle : to_check) {
      std::vector<TxnId> ids;
      ids.reserve(cycle.size());
      for (int v : cycle) ids.push_back(snap.id(v));
      cycle_keys.push_back(CanonicalCycleKey(ids));
    }
    std::optional<FlatCycleChecker> flat_checker;
    delta.cycles_recomputed = DecideDirtyCycles(
        view, to_check, cycle_keys,
        [&]() -> const FlatCycleChecker* {
          flat_checker.emplace(view, pairs);
          return &*flat_checker;
        },
        ctx_, &store_);
    delta.cycles_reused =
        static_cast<int64_t>(to_check.size()) - delta.cycles_recomputed;

    size_t first_acyclic = to_check.size();
    for (size_t c = 0; c < to_check.size(); ++c) {
      if (!store_.cycles.at(cycle_keys[c])) {
        first_acyclic = c;
        break;
      }
    }
    ReduceCycleScan(&to_check, first_acyclic, budget_exhausted, &report);
  }
  // else: condition (a) failed — the batch scan would not have enumerated
  // cycles either, so cycles_reused/cycles_recomputed stay 0.

  report.delta = delta;
  ++totals_.checks;
  totals_.pairs_reused += delta.pairs_reused;
  totals_.pairs_recomputed += delta.pairs_recomputed;
  totals_.cycles_reused += delta.cycles_reused;
  totals_.cycles_recomputed += delta.cycles_recomputed;
  return report;
}

}  // namespace dislock
