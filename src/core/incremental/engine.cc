#include "core/incremental/engine.h"

#include <algorithm>
#include <atomic>
#include <future>
#include <string>
#include <unordered_set>

#include "core/decision/context.h"
#include "core/verdict_cache.h"
#include "core/wire_keys.h"
#include "graph/cycles.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace dislock {

namespace {

/// Canonical key of a directed TxnId cycle: rotated so the smallest id
/// (unique — simple cycles repeat no vertex) comes first, direction
/// preserved. B_c is built from the cyclic subpath structure, so it is
/// invariant under rotation but not under reversal.
std::vector<TxnId> CanonicalCycleKey(const std::vector<TxnId>& cycle) {
  auto min_it = std::min_element(cycle.begin(), cycle.end());
  std::vector<TxnId> key;
  key.reserve(cycle.size());
  key.insert(key.end(), min_it, cycle.end());
  key.insert(key.end(), cycle.begin(), min_it);
  return key;
}

}  // namespace

IncrementalSafetyEngine::IncrementalSafetyEngine(
    const TransactionCatalog* catalog, EngineContext* ctx)
    : catalog_(catalog), ctx_(ctx) {
  DISLOCK_CHECK(catalog != nullptr);
  DISLOCK_CHECK(ctx != nullptr);
}

void IncrementalSafetyEngine::Reset() {
  prev_.clear();
  has_prev_ = false;
  pair_store_.clear();
  cycle_store_.clear();
}

MultiSafetyReport IncrementalSafetyEngine::Check() {
  const EngineConfig& options = ctx_->config();
  CatalogSnapshot snap = catalog_->Snapshot();
  SystemView view = snap.View();
  MultiSafetyReport report;
  DeltaStats delta;

  // ---- Diff against the previous Check by pointer identity per id. ----
  std::optional<obs::TraceSpan> diff_span;
  diff_span.emplace(ctx_->trace(), wire::kSpanIncrementalDiff);
  std::unordered_map<TxnId, std::shared_ptr<const Transaction>> cur;
  cur.reserve(static_cast<size_t>(snap.NumTransactions()));
  for (int i = 0; i < snap.NumTransactions(); ++i) {
    cur.emplace(snap.id(i), snap.txn_ptr(i));
  }
  std::unordered_set<TxnId> edited;  // removed or replaced: invalidation set
  if (!has_prev_) {
    delta.full = true;
  } else {
    for (const auto& [id, txn] : prev_) {
      auto it = cur.find(id);
      if (it == cur.end()) {
        ++delta.txns_removed;
        edited.insert(id);
      } else if (it->second.get() != txn.get()) {
        ++delta.txns_replaced;
        edited.insert(id);
      }
    }
    for (const auto& [id, txn] : cur) {
      if (prev_.find(id) == prev_.end()) ++delta.txns_added;
    }
  }

  diff_span.reset();

  // ---- Invalidate exactly the store entries that mention an edited id:
  // the edited transaction's incident pairs and the cycles through it. ----
  std::optional<obs::TraceSpan> invalidate_span;
  invalidate_span.emplace(ctx_->trace(), wire::kSpanIncrementalInvalidate);
  if (!edited.empty()) {
    for (auto it = pair_store_.begin(); it != pair_store_.end();) {
      if (edited.count(it->first.first) != 0 ||
          edited.count(it->first.second) != 0) {
        it = pair_store_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = cycle_store_.begin(); it != cycle_store_.end();) {
      bool touched = false;
      for (TxnId id : it->first) touched = touched || edited.count(id) != 0;
      if (touched) {
        it = cycle_store_.erase(it);
      } else {
        ++it;
      }
    }
  }

  invalidate_span.reset();

  // ---- Condition (a): decide the dirty conflicting pairs, reuse the
  // rest. ----
  std::optional<obs::TraceSpan> pairs_span;
  pairs_span.emplace(ctx_->trace(), wire::kSpanIncrementalPairs);
  Digraph g = BuildTransactionConflictGraph(view);
  std::vector<std::pair<int, int>> pairs = ConflictingPairs(g);
  auto key_of = [&snap](const std::pair<int, int>& p) {
    TxnId a = snap.id(p.first);
    TxnId b = snap.id(p.second);
    return std::make_pair(std::min(a, b), std::max(a, b));
  };
  std::vector<size_t> dirty;
  for (size_t p = 0; p < pairs.size(); ++p) {
    if (pair_store_.find(key_of(pairs[p])) == pair_store_.end()) {
      dirty.push_back(p);
    }
  }
  delta.pairs_recomputed = static_cast<int64_t>(dirty.size());
  delta.pairs_reused = static_cast<int64_t>(pairs.size() - dirty.size());

  // Mirror the batch path's per-pair config (core/multi.cc) so a stored
  // report is bit-identical to the one a scratch run would compute.
  ThreadPool* pool = ctx_->pool();
  EngineConfig pair_config = options;
  pair_config.cache = nullptr;
  pair_config.enable_cache = false;
  if (pool != nullptr) pair_config.num_threads = 1;
  // All dirty pairs are computed — no early exit — so the store state
  // after this loop is thread-count-independent.
  std::vector<PairSafetyReport> dirty_reports(dirty.size());
  auto run_pair = [&](size_t d) {
    const std::pair<int, int>& p = pairs[dirty[d]];
    dirty_reports[d] =
        AnalyzePairSafety(view.txn(p.first), view.txn(p.second), pair_config);
  };
  if (pool != nullptr && dirty.size() > 1) {
    std::vector<std::future<void>> futures;
    futures.reserve(dirty.size());
    for (size_t d = 0; d < dirty.size(); ++d) {
      futures.push_back(pool->Submit([&, d] { run_pair(d); }));
    }
    for (auto& f : futures) f.get();
  } else {
    for (size_t d = 0; d < dirty.size(); ++d) run_pair(d);
  }
  for (size_t d = 0; d < dirty.size(); ++d) {
    pair_store_.emplace(key_of(pairs[dirty[d]]), std::move(dirty_reports[d]));
  }

  // ---- Replay the serial memoized scan exactly as a fresh-context
  // scratch run would: fingerprint groups when the config asks for a
  // verdict cache (whose initial state in a fresh context is empty, hence
  // cached_safe is never set), singleton groups otherwise. ----
  std::vector<ScanPair> scan;
  scan.reserve(pairs.size());
  int num_groups = 0;
  if (options.cache != nullptr || options.enable_cache) {
    std::unordered_map<std::string, int> group_index;
    for (size_t p = 0; p < pairs.size(); ++p) {
      std::string fp =
          options.use_flat_kernel
              ? PairFingerprintFlat(view.txn(pairs[p].first),
                                    view.txn(pairs[p].second))
              : PairFingerprint(view.txn(pairs[p].first),
                                view.txn(pairs[p].second));
      auto [it, inserted] = group_index.emplace(std::move(fp), num_groups);
      if (inserted) ++num_groups;
      ScanPair sp;
      sp.txns = pairs[p];
      sp.group = it->second;
      sp.report = &pair_store_.at(key_of(pairs[p]));
      scan.push_back(sp);
    }
  } else {
    num_groups = static_cast<int>(pairs.size());
    for (size_t p = 0; p < pairs.size(); ++p) {
      ScanPair sp;
      sp.txns = pairs[p];
      sp.group = static_cast<int>(p);
      sp.report = &pair_store_.at(key_of(pairs[p]));
      scan.push_back(sp);
    }
  }
  std::optional<size_t> failing = ReplayPairScan(scan, num_groups, {}, &report);
  pairs_span.reset();

  prev_ = std::move(cur);
  has_prev_ = true;

  if (!failing.has_value()) {
    // ---- Condition (b): examine the dirty cycles, reuse the rest. ----
    obs::TraceSpan cycles_span(ctx_->trace(), wire::kSpanIncrementalCycles);
    std::vector<std::vector<NodeId>> cycles =
        options.use_flat_kernel ? SimpleCyclesFlat(g, options.max_cycles)
                                : SimpleCycles(g, options.max_cycles);
    bool budget_exhausted =
        static_cast<int64_t>(cycles.size()) >= options.max_cycles;
    const size_t min_len = options.include_two_cycles ? 2 : 3;
    std::vector<std::vector<int>> to_check;
    for (const auto& cycle : cycles) {
      if (cycle.size() < min_len) continue;
      to_check.emplace_back(cycle.begin(), cycle.end());
    }
    std::vector<std::vector<TxnId>> keys;
    keys.reserve(to_check.size());
    for (const auto& cycle : to_check) {
      std::vector<TxnId> ids;
      ids.reserve(cycle.size());
      for (int v : cycle) ids.push_back(snap.id(v));
      keys.push_back(CanonicalCycleKey(ids));
    }
    std::vector<size_t> dirty_cycles;
    for (size_t c = 0; c < to_check.size(); ++c) {
      if (cycle_store_.find(keys[c]) == cycle_store_.end()) {
        dirty_cycles.push_back(c);
      }
    }
    delta.cycles_recomputed = static_cast<int64_t>(dirty_cycles.size());
    delta.cycles_reused =
        static_cast<int64_t>(to_check.size() - dirty_cycles.size());

    // Again exhaustively, no early exit, for store determinism.
    std::vector<char> dirty_has_cycle(dirty_cycles.size(), 0);
    std::optional<FlatCycleChecker> flat_checker;
    if (options.use_flat_kernel && !dirty_cycles.empty()) {
      flat_checker.emplace(view, pairs);
    }
    auto run_cycle = [&](size_t d) {
      const std::vector<int>& cycle = to_check[dirty_cycles[d]];
      dirty_has_cycle[d] =
          (flat_checker.has_value()
               ? flat_checker->BcHasCycle(cycle)
               : HasCycle(BuildCycleGraph(view, cycle)))
              ? 1
              : 0;
    };
    if (pool != nullptr && dirty_cycles.size() > 1) {
      constexpr size_t kChunk = 16;
      std::vector<std::future<void>> futures;
      for (size_t begin = 0; begin < dirty_cycles.size(); begin += kChunk) {
        size_t end = std::min(begin + kChunk, dirty_cycles.size());
        futures.push_back(pool->Submit([&, begin, end] {
          for (size_t d = begin; d < end; ++d) run_cycle(d);
        }));
      }
      for (auto& f : futures) f.get();
    } else {
      for (size_t d = 0; d < dirty_cycles.size(); ++d) run_cycle(d);
    }
    for (size_t d = 0; d < dirty_cycles.size(); ++d) {
      cycle_store_.emplace(keys[dirty_cycles[d]], dirty_has_cycle[d] != 0);
    }

    size_t first_acyclic = to_check.size();
    for (size_t c = 0; c < to_check.size(); ++c) {
      if (!cycle_store_.at(keys[c])) {
        first_acyclic = c;
        break;
      }
    }
    ReduceCycleScan(&to_check, first_acyclic, budget_exhausted, &report);
  }
  // else: condition (a) failed — the batch scan would not have enumerated
  // cycles either, so cycles_reused/cycles_recomputed stay 0.

  report.delta = delta;
  ++totals_.checks;
  totals_.pairs_reused += delta.pairs_reused;
  totals_.pairs_recomputed += delta.pairs_recomputed;
  totals_.cycles_reused += delta.cycles_reused;
  totals_.cycles_recomputed += delta.cycles_recomputed;
  return report;
}

}  // namespace dislock
