#ifndef DISLOCK_CORE_INCREMENTAL_SESSION_H_
#define DISLOCK_CORE_INCREMENTAL_SESSION_H_

#include <functional>
#include <iosfwd>
#include <string>

#include "core/decision/config.h"

namespace dislock {

class CatalogSnapshot;

/// Hook the `analyze` session command calls on the current catalog
/// snapshot. Returns the rendered analysis — DiagnosticsToText when `json`
/// is false, DiagnosticsToJson otherwise. Injected (rather than called
/// directly) because the pass framework lives in the analysis layer, above
/// this one; analysis/analyzer.h provides MakeSessionAnalyzer().
using SessionAnalyzeFn = std::function<std::string(
    const CatalogSnapshot& snapshot, const EngineConfig& config, bool json)>;

/// Options for `dislock session` (tools/dislock_cli.cc).
struct SessionOptions {
  /// Emit one JSON object per command instead of human-readable text.
  bool json = false;
  /// When non-empty, relative `load` paths are resolved against this
  /// directory (tests use it to run scripts from any working directory).
  std::string load_root;
  /// Engine configuration (num_threads 0 = one worker per hardware
  /// thread, enable_cache, cycle budget, ...). `config.trace` drives the
  /// per-command "session.command" spans; `config.stats`, when set,
  /// receives the session counters (session.commands / session.checks /
  /// session.errors) plus per-check report stats when the run ends.
  /// Neither ever affects session output.
  EngineConfig config;
  /// Handler for the `analyze` command; when unset, `analyze` reports an
  /// error explaining that the front end did not wire the analyzer in.
  SessionAnalyzeFn analyze;
  /// Shard the catalog across this many shards
  /// (core/incremental/sharded_catalog.h); 1 = the classic single-engine
  /// backend. `check` reports are byte-identical at any shard count; only
  /// `list` ids (lane-allocated) and the extra `stats` shard fields differ.
  int shards = 1;
  /// Command lines longer than this many bytes draw a structured error
  /// instead of reaching the parser (and abort any open txn block);
  /// 0 disables the limit.
  size_t max_line_bytes = 1 << 20;
};

/// The interactive / scripted front end of the incremental engine: reads
/// line-oriented commands from `in`, maintains a TransactionCatalog and an
/// IncrementalSafetyEngine, and writes one response per command to `out`.
///
/// Commands:
///   load <path>        parse a system file; (re)initializes the catalog
///   system             (JSON envelope only) full system text inline in the
///                      envelope's "block"; (re)initializes like load. Trace
///                      replay (src/gen/) uses this so a .dlt file is
///                      self-contained.
///   add                followed by a `txn <name> ... end` block: add it
///   remove <name>      remove the named transaction
///   replace <name>     followed by a `txn ... end` block: swap the
///                      definition in place (id and slot preserved; the
///                      block may rename)
///   check              incremental safety analysis of the current catalog
///   analyze            full pass diagnostics (via SessionOptions::analyze)
///   list               live transactions with their ids
///   stats              generation, store sizes, cumulative reuse totals
///   help               command summary
///   quit | exit        stop (EOF also stops)
/// Blank lines and `#` comments are ignored. A failed command prints
/// `error: ...` (or {"ok": false, ...} in JSON mode) and the session
/// continues; the catalog is unchanged by failed commands.
///
/// Output in both modes is deterministic (golden-tested) at any thread
/// count — it surfaces only report fields, which carry the engine's
/// determinism guarantee.
///
/// Returns the number of failed commands (0 = clean run).
int RunSession(std::istream& in, std::ostream& out,
               const SessionOptions& options);

}  // namespace dislock

#endif  // DISLOCK_CORE_INCREMENTAL_SESSION_H_
