#include "core/conflict_graph.h"

#include <algorithm>
#include <sstream>

namespace dislock {

std::vector<EntityId> ConflictingEntities(const Transaction& t1,
                                          const Transaction& t2) {
  std::vector<EntityId> out;
  for (EntityId e : t1.LockedEntities()) {
    if (t2.LockStep(e) == kInvalidStep || t2.UnlockStep(e) == kInvalidStep) {
      continue;
    }
    if (t1.IsSharedSection(e) && t2.IsSharedSection(e)) continue;
    out.push_back(e);
  }
  return out;
}

ConflictGraph BuildConflictGraph(const Transaction& t1,
                                 const Transaction& t2) {
  DISLOCK_CHECK_EQ(&t1.db(), &t2.db());
  ConflictGraph d;

  // V = entities on which the transactions conflict.
  std::vector<EntityId> common = ConflictingEntities(t1, t2);
  d.graph = Digraph(static_cast<int>(common.size()));
  d.entities = common;
  for (NodeId i = 0; i < static_cast<NodeId>(common.size()); ++i) {
    d.node_of.emplace(common[i], i);
    d.graph.SetLabel(i, t1.db().NameOf(common[i]));
  }

  // (x, y) in A iff Lx precedes Uy in T1 and Ly precedes Ux in T2.
  for (NodeId i = 0; i < static_cast<NodeId>(common.size()); ++i) {
    for (NodeId j = 0; j < static_cast<NodeId>(common.size()); ++j) {
      if (i == j) continue;
      EntityId x = common[i];
      EntityId y = common[j];
      if (t1.Precedes(t1.LockStep(x), t1.UnlockStep(y)) &&
          t2.Precedes(t2.LockStep(y), t2.UnlockStep(x))) {
        d.graph.AddArc(i, j);
      }
    }
  }
  return d;
}

std::string ConflictGraphToString(const ConflictGraph& d,
                                  const DistributedDatabase& db) {
  std::ostringstream out;
  out << "D = { V: {";
  for (size_t i = 0; i < d.entities.size(); ++i) {
    if (i > 0) out << ", ";
    out << db.NameOf(d.entities[i]);
  }
  out << "}, A: {";
  bool first = true;
  for (NodeId u = 0; u < d.graph.NumNodes(); ++u) {
    for (NodeId v : d.graph.OutNeighbors(u)) {
      if (!first) out << ", ";
      out << db.NameOf(d.entities[u]) << "->" << db.NameOf(d.entities[v]);
      first = false;
    }
  }
  out << "} }";
  return out.str();
}

}  // namespace dislock
