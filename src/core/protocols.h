#ifndef DISLOCK_CORE_PROTOCOLS_H_
#define DISLOCK_CORE_PROTOCOLS_H_

#include <vector>

#include "txn/system.h"
#include "txn/transaction.h"
#include "util/random.h"
#include "util/status.h"

namespace dislock {

/// Locking protocols beyond two-phase. Section 6 of the paper notes that
/// the theory of correct locking policies — every correct policy is a
/// hypergraph policy [17, 18, 19], generalizing the hierarchical protocols
/// of [12] — carries over to the distributed case verbatim through the
/// "centralized image" (the union of all linearizations). This module
/// implements the tree protocol of [12] (the classic non-two-phase safe
/// policy) and the centralized-image construction.

/// A rooted forest over the database's entities: parent[e] is e's parent
/// entity, or kInvalidEntity for roots.
struct EntityForest {
  std::vector<EntityId> parent;

  /// Builds a forest over `db` from (child, parent) pairs; unlisted
  /// entities are roots. Fails if the pairs contain a cycle.
  static Result<EntityForest> Make(
      const DistributedDatabase& db,
      const std::vector<std::pair<EntityId, EntityId>>& child_parent);
};

/// Infers a plausible entity forest from the system's lock-nesting
/// behavior, for checking transactions against the hierarchy they appear
/// to intend. A nesting x -> y is counted once per transaction that locks
/// y while provably holding x (Lx before Ly before Ux in its partial
/// order); each entity's parent is its most frequent holder (ties to the
/// smallest entity id), and arcs that would close a cycle are dropped.
/// Systems that never nest yield the trivial all-roots forest.
EntityForest InferEntityForest(const TransactionSystem& system);

/// Checks the tree-protocol rules of [12] against a locked transaction:
///   * the first-locked entity is arbitrary (the entry point);
///   * any other entity x may be locked only while holding x's parent
///     (Lparent precedes Lx precedes Uparent in the partial order);
///   * each entity is locked at most once (the model already enforces it).
/// Transactions obeying the protocol need not be two-phase, yet every
/// system of compliant transactions is safe.
Status CheckTreeProtocol(const Transaction& txn, const EntityForest& forest);

/// Generates a random tree-protocol-compliant, totally ordered transaction
/// that locks a random connected subtree of `forest` containing
/// `num_entities` entities (fewer if the forest is small). Unlocks are
/// released as early as the protocol allows, so the result is genuinely
/// non-two-phase whenever the chosen subtree branches or is >= 3 deep.
/// `start` fixes the subtree's entry entity; kInvalidEntity picks one at
/// random (a leaf start yields a small — possibly single-entity — subtree,
/// since the protocol only descends).
Result<Transaction> MakeTreeProtocolTransaction(
    const DistributedDatabase* db, const EntityForest& forest,
    const std::string& name, int num_entities, Rng* rng,
    EntityId start = kInvalidEntity);

/// The centralized image of a distributed transaction (Section 6): its
/// linearizations, materialized as totally ordered transactions. A
/// distributed locking policy is correct iff its centralized image is.
/// Enumeration is capped at `max_extensions` (ResourceExhausted beyond).
Result<std::vector<Transaction>> CentralizedImage(const Transaction& txn,
                                                  int64_t max_extensions);

}  // namespace dislock

#endif  // DISLOCK_CORE_PROTOCOLS_H_
