#include "core/certificate.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "core/closure.h"
#include "core/conflict_graph.h"
#include "graph/dominator.h"
#include "graph/scc.h"
#include "graph/topological.h"
#include "txn/linear_extension.h"
#include "util/string_util.h"

namespace dislock {

namespace {

/// Tries to turn the total-order pair into a non-serializable schedule by
/// separating `x_set` rectangles from the rest, in either orientation.
Result<Schedule> SeparateByPartition(const PairPicture& pic,
                                     const std::set<EntityId>& x_set) {
  std::vector<EntityId> xs, rest;
  for (const Rect& r : pic.rects()) {
    if (x_set.count(r.entity) > 0) {
      xs.push_back(r.entity);
    } else {
      rest.push_back(r.entity);
    }
  }
  if (xs.empty() || rest.empty()) {
    return Status::InvalidArgument("partition does not split the rectangles");
  }
  // Orientation 1 (proof of Theorem 2): X-rectangles on one side of the
  // curve, the rest on the other. Try both orientations.
  auto curve = FindSeparatingCurve(pic, /*pass_above=*/rest,
                                   /*pass_below=*/xs);
  if (!curve.ok()) {
    curve = FindSeparatingCurve(pic, /*pass_above=*/xs,
                                /*pass_below=*/rest);
  }
  if (!curve.ok()) {
    return Status::NotFound("no curve separates this partition");
  }
  return CurveToSchedule(pic, curve.value());
}

}  // namespace

Result<UnsafetyCertificate> BuildUnsafetyCertificate(
    const Transaction& t1, const Transaction& t2,
    const std::vector<EntityId>& dominator) {
  // Step 1: close {T1, T2} with respect to X (Lemmas 2-3).
  DISLOCK_ASSIGN_OR_RETURN(ClosureResult closed,
                           CloseWithRespectTo(t1, t2, dominator));
  const std::set<EntityId> x_set(dominator.begin(), dominator.end());

  // Step 2a: total order of the closed T1, emitting Ux (x in X) as early as
  // possible — each X-unlock is preceded by exactly its ancestors (and
  // earlier X-unlocks with theirs).
  std::vector<StepId> x_unlocks1;
  for (StepId s = 0; s < closed.t1.NumSteps(); ++s) {
    const Step& step = closed.t1.GetStep(s);
    if (step.kind == StepKind::kUnlock && x_set.count(step.entity) > 0) {
      x_unlocks1.push_back(s);
    }
  }
  auto order1 = AncestorFirstTopologicalSort(closed.t1.order(), x_unlocks1);
  if (!order1.ok()) {
    return Status::Internal("closed T1 became cyclic");
  }
  std::vector<int> pos1(closed.t1.NumSteps(), 0);
  for (size_t i = 0; i < order1.value().size(); ++i) {
    pos1[order1.value()[i]] = static_cast<int>(i);
  }

  // Step 2b: total order of the closed T2, emitting Lx (x in X) as late as
  // possible, with Lx before Lx' whenever Ux came before Ux' in t1. "As
  // late as possible" = as early as possible in the REVERSED order, with
  // the priority list reversed accordingly (latest forward lock first).
  std::vector<StepId> x_locks2;
  for (StepId s = 0; s < closed.t2.NumSteps(); ++s) {
    const Step& step = closed.t2.GetStep(s);
    if (step.kind == StepKind::kLock && x_set.count(step.entity) > 0) {
      x_locks2.push_back(s);
    }
  }
  std::sort(x_locks2.begin(), x_locks2.end(), [&](StepId a, StepId b) {
    StepId ua = closed.t1.UnlockStep(closed.t2.GetStep(a).entity);
    StepId ub = closed.t1.UnlockStep(closed.t2.GetStep(b).entity);
    if (ua != kInvalidStep && ub != kInvalidStep && ua != ub) {
      return pos1[ua] > pos1[ub];  // latest t1 unlock first (reversed)
    }
    return a > b;
  });
  auto rev_order2 = AncestorFirstTopologicalSort(
      ReverseOf(closed.t2.order()), x_locks2);
  if (!rev_order2.ok()) {
    return Status::Internal("closed T2 became cyclic");
  }
  std::vector<NodeId> order2(rev_order2.value().rbegin(),
                             rev_order2.value().rend());

  // Step 3: materialize the total orders against the ORIGINAL transactions
  // (the closure only added precedences, so these are linear extensions of
  // the originals too) and look for the separating curve.
  UnsafetyCertificate cert{dominator,
                           t1,  // placeholders, replaced below
                           t2,
                           {order1.value().begin(), order1.value().end()},
                           {order2.begin(), order2.end()},
                           Schedule(),
                           SeparationWitness{}};
  DISLOCK_ASSIGN_OR_RETURN(cert.t1, Linearize(t1, cert.order1));
  DISLOCK_ASSIGN_OR_RETURN(cert.t2, Linearize(t2, cert.order2));
  cert.t1.set_name(t1.name() + "~t");
  cert.t2.set_name(t2.name() + "~t");

  DISLOCK_ASSIGN_OR_RETURN(PairPicture pic,
                           PairPicture::Make(cert.t1, cert.t2));
  auto schedule = SeparateByPartition(pic, x_set);
  if (!schedule.ok()) {
    // Fallback: the paper shows two total orders are closed with respect to
    // ANY dominator of their own D graph, so search those.
    ConflictGraph d = BuildConflictGraph(cert.t1, cert.t2);
    for (const auto& dom_nodes : AllDominators(d.graph, 512)) {
      std::set<EntityId> alt;
      for (NodeId v : dom_nodes) alt.insert(d.entities[v]);
      schedule = SeparateByPartition(pic, alt);
      if (schedule.ok()) {
        cert.dominator.assign(alt.begin(), alt.end());
        break;
      }
    }
  }
  if (!schedule.ok()) {
    return Status::Undecided(
        "no separating curve exists for any dominator of the constructed "
        "total orders (possible only with three or more sites)");
  }
  cert.schedule = std::move(schedule).value();
  auto separation = FindSeparation(pic, cert.schedule);
  if (!separation.has_value()) {
    return Status::Internal("separating curve produced no separation");
  }
  cert.separation = *separation;

  DISLOCK_RETURN_NOT_OK(VerifyUnsafetyCertificate(t1, t2, cert));
  return cert;
}

Result<UnsafetyCertificate> BuildCertificateFromExtensions(
    const Transaction& t1, const Transaction& t2,
    const std::vector<StepId>& order1, const std::vector<StepId>& order2) {
  UnsafetyCertificate cert{{},           t1, t2, order1, order2,
                           Schedule(),   SeparationWitness{}};
  DISLOCK_ASSIGN_OR_RETURN(cert.t1, Linearize(t1, order1));
  DISLOCK_ASSIGN_OR_RETURN(cert.t2, Linearize(t2, order2));
  cert.t1.set_name(t1.name() + "~t");
  cert.t2.set_name(t2.name() + "~t");
  DISLOCK_ASSIGN_OR_RETURN(PairPicture pic,
                           PairPicture::Make(cert.t1, cert.t2));
  ConflictGraph d = BuildConflictGraph(cert.t1, cert.t2);
  if (IsStronglyConnected(d.graph)) {
    return Status::NotFound(
        "D(t1, t2) is strongly connected; this total-order pair is safe");
  }
  for (const auto& dom_nodes : AllDominators(d.graph, 512)) {
    std::set<EntityId> x_set;
    for (NodeId v : dom_nodes) x_set.insert(d.entities[v]);
    auto schedule = SeparateByPartition(pic, x_set);
    if (!schedule.ok()) continue;
    cert.dominator.assign(x_set.begin(), x_set.end());
    cert.schedule = std::move(schedule).value();
    auto separation = FindSeparation(pic, cert.schedule);
    if (!separation.has_value()) continue;
    cert.separation = *separation;
    DISLOCK_RETURN_NOT_OK(VerifyUnsafetyCertificate(t1, t2, cert));
    return cert;
  }
  return Status::Internal(
      "no dominator of a non-strongly-connected D(t1, t2) admits a "
      "separating curve; this contradicts the theory for total orders");
}

Status VerifyUnsafetyCertificate(const Transaction& t1, const Transaction& t2,
                                 const UnsafetyCertificate& cert) {
  if (!IsLinearExtension(t1, cert.order1)) {
    return Status::InvalidArgument(
        "certificate t1 is not a linear extension of T1");
  }
  if (!IsLinearExtension(t2, cert.order2)) {
    return Status::InvalidArgument(
        "certificate t2 is not a linear extension of T2");
  }
  TransactionSystem pair = MakePairSystem(cert.t1, cert.t2);
  DISLOCK_RETURN_NOT_OK(CheckScheduleLegal(pair, cert.schedule));
  if (IsSerializable(pair, cert.schedule)) {
    return Status::InvalidArgument("certificate schedule is serializable");
  }
  return Status::OK();
}

std::string CertificateToString(const UnsafetyCertificate& cert,
                                const DistributedDatabase& db) {
  std::ostringstream out;
  out << "Unsafety certificate\n  dominator X = {";
  for (size_t i = 0; i < cert.dominator.size(); ++i) {
    if (i > 0) out << ", ";
    out << db.NameOf(cert.dominator[i]);
  }
  out << "}\n  t1:";
  for (StepId s : cert.order1) out << " " << cert.t1.StepString(s);
  out << "\n  t2:";
  for (StepId s : cert.order2) out << " " << cert.t2.StepString(s);
  TransactionSystem pair = MakePairSystem(cert.t1, cert.t2);
  out << "\n  schedule: " << cert.schedule.ToString(pair);
  out << "\n  separates: " << db.NameOf(cert.separation.above)
      << " (above) from " << db.NameOf(cert.separation.below) << " (below)\n";
  return out.str();
}

}  // namespace dislock
