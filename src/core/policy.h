#ifndef DISLOCK_CORE_POLICY_H_
#define DISLOCK_CORE_POLICY_H_

#include <string>
#include <vector>

#include "txn/transaction.h"

namespace dislock {

/// The classical (syntactic) two-phase condition [3]: no unlock step
/// precedes any lock step in the transaction's partial order. For totally
/// ordered transactions this is standard 2PL; for genuinely partial orders
/// it is WEAKER than what safety needs, because an interleaving can
/// linearize concurrent lock/unlock steps into a non-two-phase order.
bool IsTwoPhase(const Transaction& txn);

/// The distributed-safe strengthening: every lock step precedes every
/// unlock step in the partial order (a global "lock point" exists). All
/// linear extensions of a strongly two-phase transaction are two-phase, and
/// any pair of strongly two-phase transactions has a complete — hence
/// strongly connected — conflict graph D, so Theorem 1 applies: such
/// systems are always safe.
bool IsStronglyTwoPhase(const Transaction& txn);

/// Builds a strongly two-phase transaction that locks `entities`, updates
/// each once, and unlocks them: per-site chains of locks, then updates,
/// then per-site chains of unlocks, with lock-point arcs from every lock to
/// every unlock.
Transaction MakeTwoPhaseTransaction(const DistributedDatabase* db,
                                    const std::string& name,
                                    const std::vector<EntityId>& entities);

}  // namespace dislock

#endif  // DISLOCK_CORE_POLICY_H_
