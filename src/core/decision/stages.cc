// The five registered decision procedures. Theorem1Scc / Theorem2TwoSite /
// Corollary2Closure / BruteForceLemma1 carry over the legacy
// AnalyzePairSafety cascade verbatim (verdicts, methods and details are
// preserved bit for bit); SatExhaustive is the stage that routes src/sat/
// into the safety engine as a >= 3-site fallback.

#include <algorithm>
#include <atomic>
#include <future>
#include <set>
#include <utility>
#include <vector>

#include "core/closure.h"
#include "core/decision/procedure.h"
#include "core/wire_keys.h"
#include "graph/dominator.h"
#include "obs/trace.h"
#include "sat/cnf.h"
#include "sat/solver.h"
#include "util/string_util.h"

namespace dislock {
namespace {

/// Shared by the closure-based stages: the Lemma 2/3 closure run on one
/// candidate dominator X (given as entity ids).
enum class ClosureOutcome {
  kProof,      // closure contradiction: X provably certifies nothing
  kUnproven,   // closure failed without a proof, or certificate failed
  kCertified,  // closed w.r.t. X and the certificate verified
};
struct ClosureAttempt {
  ClosureOutcome outcome = ClosureOutcome::kUnproven;
  std::optional<UnsafetyCertificate> certificate;
};

ClosureAttempt TryCloseDominator(const Transaction& t1, const Transaction& t2,
                                 const std::vector<EntityId>& x,
                                 bool use_flat_kernel) {
  auto closed = use_flat_kernel ? CloseWithRespectToFlat(t1, t2, x)
                                : CloseWithRespectTo(t1, t2, x);
  if (!closed.ok()) {
    // kUndecided from the closure is a PROOF that X cannot certify
    // unsafety (the contradiction holds in every extension pair).
    return {closed.status().code() == StatusCode::kUndecided
                ? ClosureOutcome::kProof
                : ClosureOutcome::kUnproven,
            std::nullopt};
  }
  // Closed with respect to a dominator: Corollary 2 says unsafe; construct
  // and verify the certificate.
  auto cert = BuildUnsafetyCertificate(t1, t2, x);
  if (!cert.ok()) return {ClosureOutcome::kUnproven, std::nullopt};
  return {ClosureOutcome::kCertified, std::move(cert).value()};
}

StageOutcome CertifiedOutcome(DecisionMethod method, std::string detail,
                              ClosureAttempt attempt, int64_t work) {
  StageOutcome out;
  out.decided = true;
  out.verdict = SafetyVerdict::kUnsafe;
  out.method = method;
  out.detail = std::move(detail);
  out.certificate = std::move(attempt.certificate);
  out.work = work;
  return out;
}

// ---------------------------------------------------------------------------
// Stage 1: Theorem 1 — D strongly connected -> safe at any number of sites.

class Theorem1SccStage : public DecisionProcedure {
 public:
  DecisionStageId stage() const override {
    return DecisionStageId::kTheorem1Scc;
  }

  bool Applicable(const PairSafetyReport&, const EngineConfig&)
      const override {
    return true;
  }

  StageOutcome Decide(const Transaction&, const Transaction&,
                      const PairSafetyReport& draft,
                      EngineContext*) const override {
    StageOutcome out;
    out.work = 1;
    if (draft.d_strongly_connected) {
      out.decided = true;
      out.verdict = SafetyVerdict::kSafe;
      out.method = DecisionMethod::kTheorem1;
      out.detail = "D(T1,T2) is strongly connected";
    }
    return out;
  }
};

// ---------------------------------------------------------------------------
// Stage 2: Theorem 2 — the complete two-site procedure. Terminal whenever
// applicable: at <= 2 sites the test is exact, so nothing falls through.

class Theorem2TwoSiteStage : public DecisionProcedure {
 public:
  DecisionStageId stage() const override {
    return DecisionStageId::kTheorem2TwoSite;
  }

  bool Applicable(const PairSafetyReport& draft, const EngineConfig&)
      const override {
    return draft.sites_spanned <= 2;
  }

  StageOutcome Decide(const Transaction& t1, const Transaction& t2,
                      const PairSafetyReport&,
                      EngineContext* ctx) const override {
    StageOutcome out;
    out.work = 1;
    out.decided = true;  // complete for its fragment, success or not
    auto two_site =
        TwoSiteSafetyTest(t1, t2, ctx->config().use_flat_kernel);
    if (!two_site.ok()) {
      out.verdict = SafetyVerdict::kUnknown;
      out.detail = two_site.status().ToString();
      return out;
    }
    out.verdict = two_site->verdict;
    out.method = two_site->method;
    out.detail = std::move(two_site->detail);
    out.certificate = std::move(two_site->certificate);
    return out;
  }
};

// ---------------------------------------------------------------------------
// Stage 3: the Corollary 2 dominator-closure loop. For each dominator X of
// D, run the Lemma 2/3 closure:
//   * closure converges -> Corollary 2 -> unsafe, with certificate;
//   * closure derives a contradiction -> PROOF that no compatible pair of
//     total orders is closed with respect to X.
// Every unsafe system has an unsafe extension pair (Lemma 1), whose
// D(t1,t2) has a dominator, with respect to which the pair is closed; that
// dominator is also a dominator of D(T1,T2) (extensions only add arcs over
// the same vertex set). Hence if the enumeration covered ALL dominators and
// every closure failed with a proof, the system is SAFE. The number of
// dominators can be exponential — this is exactly where Theorem 3's
// coNP-hardness lives (dominators of the reduction encode truth
// assignments).

class Corollary2ClosureStage : public DecisionProcedure {
 public:
  DecisionStageId stage() const override {
    return DecisionStageId::kCorollary2Closure;
  }

  bool Applicable(const PairSafetyReport& draft, const EngineConfig&)
      const override {
    // >= 3 sites only: the two-site stage is terminal below that. A zero
    // max_dominators budget still counts as an (immediately exhausted)
    // attempt rather than a skip — budget exhaustion must be visible.
    return draft.sites_spanned >= 3;
  }

  StageOutcome Decide(const Transaction& t1, const Transaction& t2,
                      const PairSafetyReport& draft,
                      EngineContext* ctx) const override {
    const EngineConfig& config = ctx->config();
    StageOutcome out;

    std::vector<std::vector<NodeId>> dominators = [&] {
      obs::TraceSpan span(ctx->trace(), wire::kSpanClosureDominators);
      return config.use_flat_kernel
                 ? AllDominatorsFlat(draft.d.graph, config.max_dominators + 1)
                 : AllDominators(draft.d.graph, config.max_dominators + 1);
    }();
    bool enumeration_complete =
        static_cast<int64_t>(dominators.size()) <= config.max_dominators;
    if (!enumeration_complete) dominators.pop_back();
    out.budget_exhausted = !enumeration_complete;

    auto evaluate =
        [&](const std::vector<NodeId>& dom_nodes) -> ClosureAttempt {
      // One span per closure run, from whichever thread runs it — this is
      // the loop the trace exists to make visible.
      obs::TraceSpan span(ctx->trace(), wire::kSpanClosureDominator);
      return TryCloseDominator(t1, t2, draft.d.EntitiesOf(dom_nodes),
                               config.use_flat_kernel);
    };
    auto certified = [&](ClosureAttempt attempt, size_t winner) {
      return CertifiedOutcome(
          DecisionMethod::kCorollary2,
          "system closes with respect to a dominator of D",
          std::move(attempt), static_cast<int64_t>(winner) + 1);
    };

    // The per-dominator closure runs are independent, so with more than one
    // worker they fan out over the shared work-stealing pool; the reduction
    // picks the first certifying dominator in enumeration order (exactly
    // what the serial scan reports) and cancels dominators past it, so the
    // report is bit-identical at any thread count.
    const size_t count = dominators.size();
    CancellationToken* token = ctx->cancel_token();
    ThreadPool* pool = ctx->pool();
    bool all_failures_proven = true;
    if (pool != nullptr && count > 1) {
      std::vector<ClosureAttempt> results(count);
      // Indices past the first certifying one are cancelled; their slots
      // stay kUnproven but are never consulted by the reduction.
      std::atomic<size_t> first_certified{count};
      std::vector<std::future<void>> futures;
      futures.reserve(count);
      for (size_t idx = 0; idx < count; ++idx) {
        futures.push_back(pool->Submit([&, idx] {
          if (token->cancelled() ||
              idx > first_certified.load(std::memory_order_acquire)) {
            return;
          }
          results[idx] = evaluate(dominators[idx]);
          if (results[idx].outcome == ClosureOutcome::kCertified) {
            size_t seen = first_certified.load(std::memory_order_acquire);
            while (idx < seen &&
                   !first_certified.compare_exchange_weak(
                       seen, idx, std::memory_order_acq_rel)) {
            }
          }
        }));
      }
      for (auto& f : futures) f.get();
      if (token->cancelled()) {
        out.detail = "analysis cancelled";
        return out;
      }
      size_t winner = first_certified.load(std::memory_order_acquire);
      if (winner < count) {
        return certified(std::move(results[winner]), winner);
      }
      for (const ClosureAttempt& r : results) {
        if (r.outcome != ClosureOutcome::kProof) all_failures_proven = false;
      }
    } else {
      for (size_t idx = 0; idx < count; ++idx) {
        if (token->cancelled()) {
          out.detail = "analysis cancelled";
          return out;
        }
        ClosureAttempt attempt = evaluate(dominators[idx]);
        if (attempt.outcome == ClosureOutcome::kCertified) {
          return certified(std::move(attempt), idx);
        }
        if (attempt.outcome != ClosureOutcome::kProof) {
          all_failures_proven = false;
        }
      }
    }
    out.work = static_cast<int64_t>(count);
    if (enumeration_complete && all_failures_proven) {
      out.decided = true;
      out.verdict = SafetyVerdict::kSafe;
      out.method = DecisionMethod::kDominatorClosure;
      out.detail = StrCat(
          "all ", dominators.size(),
          " dominators of D provably admit no closed extension pair");
    }
    return out;
  }
};

// ---------------------------------------------------------------------------
// Stage 4: SatExhaustive — the src/sat/ machinery as a >= 3-site fallback.
//
// Dominators of D are exactly the nonempty proper predecessor-closed node
// subsets (graph/dominator.h), so they are the models of the CNF
//     for every arc (u, v) of D:  x_v -> x_u        (predecessor-closed)
//     (x_1 v ... v x_n)                             (nonempty)
//     (~x_1 v ... v ~x_n)                           (proper)
// over one variable per node of D. The stage enumerates models with the
// DPLL solver, blocking each found model, and runs the Lemma 2/3 closure on
// the corresponding dominator — Theorem 3 run in reverse: where the paper
// compiles SAT into dominator search, this stage compiles dominator search
// back into SAT. Exact on the same terms as the Corollary 2 stage: a
// certified closure is UNSAFE; a completed (UNSAT-terminated) enumeration
// whose closures all derived contradictions is SAFE.
//
// Its value over stage 3 is the search order: DPLL branching homes in on a
// certifying model without materializing the (possibly exponential)
// dominator list that AllDominators builds eagerly, and the per-solve
// decision budget composes into one cumulative config.max_sat_decisions.

class SatExhaustiveStage : public DecisionProcedure {
 public:
  DecisionStageId stage() const override {
    return DecisionStageId::kSatExhaustive;
  }

  bool Applicable(const PairSafetyReport& draft,
                  const EngineConfig& config) const override {
    return draft.sites_spanned >= 3 && config.max_sat_decisions > 0;
  }

  StageOutcome Decide(const Transaction& t1, const Transaction& t2,
                      const PairSafetyReport& draft,
                      EngineContext* ctx) const override {
    StageOutcome out;
    const Digraph& d = draft.d.graph;
    const int n = d.NumNodes();
    if (n < 2) return out;  // no proper nonempty subset can be interesting

    // Predecessor-closure clauses, deduplicated (D may carry parallel
    // arcs); variables are 1-based DIMACS, node v <-> variable v + 1.
    std::set<std::pair<int, int>> arcs;
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v : d.OutNeighbors(u)) {
        arcs.emplace(static_cast<int>(u), static_cast<int>(v));
      }
    }
    std::vector<std::vector<int>> clauses;
    clauses.reserve(arcs.size() + 2);
    for (const auto& [u, v] : arcs) {
      if (u == v) continue;
      clauses.push_back({-(v + 1), u + 1});
    }
    std::vector<int> nonempty;
    std::vector<int> proper;
    for (int v = 1; v <= n; ++v) {
      nonempty.push_back(v);
      proper.push_back(-v);
    }
    clauses.push_back(std::move(nonempty));
    clauses.push_back(std::move(proper));
    Cnf cnf = MakeCnf(n, clauses);

    CancellationToken* token = ctx->cancel_token();
    int64_t remaining = ctx->config().max_sat_decisions;
    int64_t models = 0;
    bool all_failures_proven = true;
    obs::TraceSpan models_span(ctx->trace(), wire::kSpanSatModels);
    while (true) {
      if (token->cancelled()) {
        out.detail = "analysis cancelled";
        out.work = models;
        return out;
      }
      if (remaining <= 0) {
        out.budget_exhausted = true;
        out.detail = StrCat("SAT dominator enumeration exceeded ",
                            ctx->config().max_sat_decisions,
                            " DPLL decisions after ", models, " models");
        out.work = models;
        return out;
      }
      auto solved = SolveSat(cnf, remaining);
      if (!solved.ok()) {
        out.budget_exhausted =
            solved.status().code() == StatusCode::kResourceExhausted;
        out.detail = solved.status().ToString();
        out.work = models;
        return out;
      }
      remaining -= std::max<int64_t>(int64_t{1}, solved->decisions);
      if (!solved->satisfiable) break;  // all dominators enumerated
      ++models;

      std::vector<NodeId> dom_nodes;
      std::vector<int> blocking;
      blocking.reserve(n);
      for (int v = 1; v <= n; ++v) {
        if (solved->assignment[v]) {
          dom_nodes.push_back(static_cast<NodeId>(v - 1));
          blocking.push_back(-v);
        } else {
          blocking.push_back(v);
        }
      }
      ClosureAttempt attempt =
          TryCloseDominator(t1, t2, draft.d.EntitiesOf(dom_nodes),
                            ctx->config().use_flat_kernel);
      if (attempt.outcome == ClosureOutcome::kCertified) {
        return CertifiedOutcome(
            DecisionMethod::kSatExhaustive,
            StrCat("SAT-guided dominator search: model ", models,
                   " closes with respect to a dominator of D"),
            std::move(attempt), models);
      }
      if (attempt.outcome != ClosureOutcome::kProof) {
        all_failures_proven = false;
      }
      Clause block;
      block.reserve(blocking.size());
      for (int lit : blocking) block.push_back(Literal::FromEncoded(lit));
      cnf.clauses.push_back(std::move(block));
    }
    out.work = models;
    if (all_failures_proven) {
      out.decided = true;
      out.verdict = SafetyVerdict::kSafe;
      out.method = DecisionMethod::kSatExhaustive;
      out.detail = StrCat("SAT enumeration exhausted all ", models,
                          " dominators of D; every closure derives a "
                          "contradiction");
    }
    return out;
  }
};

// ---------------------------------------------------------------------------
// Stage 5: the exhaustive Lemma 1 fallback — enumerate extension pairs.

class BruteForceLemma1Stage : public DecisionProcedure {
 public:
  DecisionStageId stage() const override {
    return DecisionStageId::kBruteForceLemma1;
  }

  bool Applicable(const PairSafetyReport&, const EngineConfig& config)
      const override {
    return config.max_extension_pairs > 0;
  }

  StageOutcome Decide(const Transaction& t1, const Transaction& t2,
                      const PairSafetyReport&,
                      EngineContext* ctx) const override {
    StageOutcome out;
    auto exhaustive =
        ExhaustivePairSafety(t1, t2, ctx->config().max_extension_pairs);
    if (!exhaustive.ok()) {
      out.budget_exhausted =
          exhaustive.status().code() == StatusCode::kResourceExhausted;
      out.detail = exhaustive.status().ToString();
      return out;
    }
    out.decided = true;
    out.method = DecisionMethod::kExhaustive;
    out.work = exhaustive->combinations_checked;
    if (exhaustive->safe) {
      out.verdict = SafetyVerdict::kSafe;
      out.detail = StrCat("all ", exhaustive->combinations_checked,
                          " extension pairs are safe");
    } else {
      out.verdict = SafetyVerdict::kUnsafe;
      out.certificate = std::move(exhaustive->certificate);
      out.detail = "an unsafe pair of linear extensions exists";
    }
    return out;
  }
};

}  // namespace

std::unique_ptr<DecisionProcedure> MakeTheorem1SccStage() {
  return std::make_unique<Theorem1SccStage>();
}
std::unique_ptr<DecisionProcedure> MakeTheorem2TwoSiteStage() {
  return std::make_unique<Theorem2TwoSiteStage>();
}
std::unique_ptr<DecisionProcedure> MakeCorollary2ClosureStage() {
  return std::make_unique<Corollary2ClosureStage>();
}
std::unique_ptr<DecisionProcedure> MakeSatExhaustiveStage() {
  return std::make_unique<SatExhaustiveStage>();
}
std::unique_ptr<DecisionProcedure> MakeBruteForceLemma1Stage() {
  return std::make_unique<BruteForceLemma1Stage>();
}

}  // namespace dislock
