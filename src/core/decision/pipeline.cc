#include "core/decision/pipeline.h"

#include <chrono>
#include <utility>

#include "core/conflict_graph.h"
#include "core/wire_keys.h"
#include "graph/scc.h"
#include "obs/trace.h"

namespace dislock {

void DecisionPipeline::Add(std::unique_ptr<DecisionProcedure> stage) {
  stages_.push_back(std::move(stage));
}

std::vector<std::string> DecisionPipeline::StageNames() const {
  std::vector<std::string> names;
  names.reserve(stages_.size());
  for (const auto& stage : stages_) names.emplace_back(stage->name());
  return names;
}

DecisionPipeline DecisionPipeline::MakeDefault() {
  DecisionPipeline pipeline;
  pipeline.Add(MakeTheorem1SccStage());
  pipeline.Add(MakeTheorem2TwoSiteStage());
  pipeline.Add(MakeCorollary2ClosureStage());
  pipeline.Add(MakeSatExhaustiveStage());
  pipeline.Add(MakeBruteForceLemma1Stage());
  return pipeline;
}

const DecisionPipeline& DecisionPipeline::Default() {
  static const DecisionPipeline* kDefault =
      new DecisionPipeline(MakeDefault());
  return *kDefault;
}

PairSafetyReport DecisionPipeline::Decide(const Transaction& t1,
                                          const Transaction& t2,
                                          EngineContext* ctx) const {
  PairSafetyReport report;
  report.sites_spanned = SitesSpanned(t1, t2);
  report.d = BuildConflictGraph(t1, t2);

  const EngineConfig& config = ctx->config();
  report.d_strongly_connected = config.use_flat_kernel
                                    ? IsStronglyConnectedFlat(report.d.graph)
                                    : IsStronglyConnected(report.d.graph);
  // The detail of the last undecided stage that had one (e.g. a
  // ResourceExhausted status string) becomes the report detail when the
  // whole cascade comes up empty — matching the legacy cascade, where each
  // failing fallback overwrote the previous diagnostic.
  std::string last_undecided_detail;
  bool decided = false;
  for (size_t i = 0; i < stages_.size(); ++i) {
    const DecisionProcedure& stage = *stages_[i];
    StageCounters& counters = report.pipeline.at(stage.stage());
    if (decided || ctx->cancel_token()->cancelled() ||
        !stage.Applicable(report, config)) {
      counters.skipped += 1;
      continue;
    }
    counters.attempts += 1;
    // One span per attempted stage, named "stage.<wire name>" — the CI
    // trace smoke step checks that every stage with attempts > 0 in the
    // report also shows up in the trace.
    obs::TraceSpan span(
        ctx->trace(),
        wire::kStageSpanNames[static_cast<int>(stage.stage())]);
    const auto started = std::chrono::steady_clock::now();
    StageOutcome outcome = stage.Decide(t1, t2, report, ctx);
    counters.wall_ms +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - started)
            .count();
    counters.work += outcome.work;
    if (outcome.budget_exhausted) counters.budget_exhausted += 1;
    if (outcome.decided) {
      counters.decided += 1;
      decided = true;
      report.verdict = outcome.verdict;
      report.method = outcome.method;
      report.certificate = std::move(outcome.certificate);
      report.detail = std::move(outcome.detail);
    } else if (!outcome.detail.empty()) {
      last_undecided_detail = std::move(outcome.detail);
    }
  }
  if (!decided) {
    report.verdict = SafetyVerdict::kUnknown;
    report.method = DecisionMethod::kNone;
    report.detail =
        !last_undecided_detail.empty()
            ? std::move(last_undecided_detail)
            : (ctx->cancel_token()->cancelled()
                   ? std::string("analysis cancelled")
                   : std::string(
                         "three or more sites and exhaustive fallback "
                         "disabled"));
  }
  return report;
}

}  // namespace dislock
