#ifndef DISLOCK_CORE_DECISION_METHOD_H_
#define DISLOCK_CORE_DECISION_METHOD_H_

namespace dislock {

/// Which of the paper's results decided a pair. A pipeline *stage* may map
/// to more than one method: the Corollary 2 closure stage reports
/// kCorollary2 when a closed dominator certifies unsafety and
/// kDominatorClosure when the exhausted enumeration proves safety.
enum class DecisionMethod {
  kNone = 0,           ///< undecided (the coNP-complete regime, over budget)
  kTheorem1,           ///< D strongly connected -> safe (any sites)
  kTheorem2,           ///< the complete <= 2-site procedure
  kCorollary2,         ///< a dominator's closure converged -> unsafe
  kDominatorClosure,   ///< every dominator provably fails -> safe
  kSatExhaustive,      ///< SAT-guided dominator enumeration (src/sat/)
  kExhaustive,         ///< Lemma 1 enumeration of extension pairs
};

/// Stable wire name: "none", "theorem-1", "theorem-2", "corollary-2",
/// "dominator-closure", "sat-exhaustive", "exhaustive". These strings are
/// part of the JSON/report contract (golden-tested).
const char* DecisionMethodName(DecisionMethod method);

}  // namespace dislock

#endif  // DISLOCK_CORE_DECISION_METHOD_H_
