#ifndef DISLOCK_CORE_DECISION_CONTEXT_H_
#define DISLOCK_CORE_DECISION_CONTEXT_H_

#include <memory>
#include <mutex>

#include "core/decision/config.h"
#include "util/thread_pool.h"

namespace dislock {

class PairVerdictCache;

/// Execution state shared by every decision made under one configuration:
/// the config itself, a lazily created work-stealing ThreadPool, an
/// optional PairVerdictCache (borrowed from the config or owned here), and
/// a CancellationToken the stages poll at safe points.
///
/// Before this class existed the pool was rebuilt per AnalyzePairSafety /
/// AnalyzeMultiSafety call and the cache re-plumbed through three options
/// structs; an EngineContext is created once per analysis session (CLI
/// invocation, stress trial, bench case) and handed to every engine entry
/// point. Determinism is unaffected: the engine's reductions are
/// scheduling-independent, so sharing one pool cannot change any report.
class EngineContext {
 public:
  explicit EngineContext(const EngineConfig& config = {});
  ~EngineContext();

  EngineContext(const EngineContext&) = delete;
  EngineContext& operator=(const EngineContext&) = delete;

  const EngineConfig& config() const { return config_; }

  /// config().num_threads with 0 resolved to HardwareThreads().
  int EffectiveThreads() const;

  /// The shared pool, created on first use with EffectiveThreads() workers;
  /// nullptr when EffectiveThreads() <= 1 (serial engine — no pool needed).
  ThreadPool* pool();

  /// The verdict cache to consult: config().cache when set, else a
  /// context-owned cache when config().enable_cache or config().store is
  /// set (the owned cache gets the store attached as its tier 2), else
  /// nullptr.
  PairVerdictCache* cache();

  /// The span recorder instrumentation sites use; nullptr (tracing off)
  /// unless the config carried one. The context is the recorder's owner in
  /// spirit — it installs the recorder on the pool it creates — but the
  /// storage is borrowed from the caller (the tools' Observability bundle),
  /// which outlives the context.
  obs::TraceRecorder* trace() const { return config_.trace; }

  /// Cooperative cancellation for long-running stages. Cancel() makes the
  /// pipeline skip not-yet-attempted stages and in-flight stages return
  /// undecided at their next safe point; the report then lands on
  /// kUnknown rather than a partial (potentially wrong) verdict.
  CancellationToken* cancel_token() { return &cancel_; }

 private:
  EngineConfig config_;
  std::mutex mu_;  ///< guards lazy pool/cache creation
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<PairVerdictCache> owned_cache_;
  CancellationToken cancel_;
};

}  // namespace dislock

#endif  // DISLOCK_CORE_DECISION_CONTEXT_H_
