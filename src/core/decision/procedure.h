#ifndef DISLOCK_CORE_DECISION_PROCEDURE_H_
#define DISLOCK_CORE_DECISION_PROCEDURE_H_

#include <memory>
#include <optional>
#include <string>

#include "core/decision/context.h"
#include "core/decision/method.h"
#include "core/decision/stats.h"
#include "core/safety.h"
#include "txn/transaction.h"

namespace dislock {

/// What one stage's Decide() produced.
///
/// `decided == true` terminates the pipeline with (verdict, method,
/// certificate, detail) — note that a terminal kUnknown is legal (the
/// two-site stage is complete for its fragment, so even its internal-error
/// path ends the pipeline rather than falling through to stages that are
/// unsound at <= 2 sites... they aren't, but the legacy cascade's contract
/// was terminal and the refactor preserves it bit for bit).
///
/// `decided == false` passes control to the next stage; `detail` then
/// carries an optional diagnostic (e.g. a ResourceExhausted status string)
/// that becomes the report detail if no later stage decides, and
/// `budget_exhausted` records that the stage hit its budget rather than
/// silently giving up.
struct StageOutcome {
  bool decided = false;
  SafetyVerdict verdict = SafetyVerdict::kUnknown;
  DecisionMethod method = DecisionMethod::kNone;
  std::optional<UnsafetyCertificate> certificate;
  std::string detail;
  bool budget_exhausted = false;
  /// Deterministic work units performed (see StageCounters::work).
  int64_t work = 0;
};

/// One decision procedure in the tiered pipeline.
///
/// Contract:
///   * Applicable() must be a pure function of the draft report (which has
///     sites_spanned, D and its strong connectivity precomputed) and the
///     config — it is how a stage claims or declines a fragment (e.g. the
///     two-site stage declines >= 3-site pairs) and how a zeroed budget
///     disables a stage outright.
///   * Decide() must be deterministic given (pair, config): any internal
///     parallelism (via ctx->pool()) must reduce to the serial result.
///     Stages poll ctx->cancel_token() at safe points and return an
///     undecided outcome when cancelled — never a partial verdict.
///   * Budgets live in the EngineConfig; a stage that exceeds its budget
///     reports budget_exhausted instead of blocking.
class DecisionProcedure {
 public:
  virtual ~DecisionProcedure() = default;

  /// Which registered stage this is; fixes the stats slot and the name.
  virtual DecisionStageId stage() const = 0;

  const char* name() const { return DecisionStageName(stage()); }

  virtual bool Applicable(const PairSafetyReport& draft,
                          const EngineConfig& config) const = 0;

  virtual StageOutcome Decide(const Transaction& t1, const Transaction& t2,
                              const PairSafetyReport& draft,
                              EngineContext* ctx) const = 0;
};

/// Factories for the five registered stages, in default pipeline order.
std::unique_ptr<DecisionProcedure> MakeTheorem1SccStage();
std::unique_ptr<DecisionProcedure> MakeTheorem2TwoSiteStage();
std::unique_ptr<DecisionProcedure> MakeCorollary2ClosureStage();
/// Routes src/sat/ into the safety engine: enumerates the dominators of D
/// as models of a predecessor-closure CNF with the DPLL solver (blocking
/// clauses between models) and runs the Lemma 2/3 closure on each — exact,
/// like the Corollary 2 stage, whenever it terminates within
/// config.max_sat_decisions.
std::unique_ptr<DecisionProcedure> MakeSatExhaustiveStage();
std::unique_ptr<DecisionProcedure> MakeBruteForceLemma1Stage();

}  // namespace dislock

#endif  // DISLOCK_CORE_DECISION_PROCEDURE_H_
