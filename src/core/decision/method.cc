#include "core/decision/method.h"

#include "core/decision/stats.h"
#include "core/wire_keys.h"

namespace dislock {

static_assert(wire::kNumDecisionStageNames == kNumDecisionStages,
              "stage name table out of sync with DecisionStageId");
static_assert(wire::kNumDecisionMethodNames ==
                  static_cast<int>(DecisionMethod::kExhaustive) + 1,
              "method name table out of sync with DecisionMethod");

// Both name tables live in core/wire_keys.h with every other wire string;
// these accessors add the enum typing and the out-of-range "?".

const char* DecisionMethodName(DecisionMethod method) {
  int i = static_cast<int>(method);
  if (i < 0 || i >= wire::kNumDecisionMethodNames) return "?";
  return wire::kDecisionMethodNames[i];
}

const char* DecisionStageName(DecisionStageId stage) {
  int i = static_cast<int>(stage);
  if (i < 0 || i >= wire::kNumDecisionStageNames) return "?";
  return wire::kDecisionStageNames[i];
}

}  // namespace dislock
