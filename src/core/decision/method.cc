#include "core/decision/method.h"

#include "core/decision/stats.h"

namespace dislock {

const char* DecisionMethodName(DecisionMethod method) {
  switch (method) {
    case DecisionMethod::kNone:
      return "none";
    case DecisionMethod::kTheorem1:
      return "theorem-1";
    case DecisionMethod::kTheorem2:
      return "theorem-2";
    case DecisionMethod::kCorollary2:
      return "corollary-2";
    case DecisionMethod::kDominatorClosure:
      return "dominator-closure";
    case DecisionMethod::kSatExhaustive:
      return "sat-exhaustive";
    case DecisionMethod::kExhaustive:
      return "exhaustive";
  }
  return "?";
}

const char* DecisionStageName(DecisionStageId stage) {
  switch (stage) {
    case DecisionStageId::kTheorem1Scc:
      return "theorem1-scc";
    case DecisionStageId::kTheorem2TwoSite:
      return "theorem2-two-site";
    case DecisionStageId::kCorollary2Closure:
      return "corollary2-closure";
    case DecisionStageId::kSatExhaustive:
      return "sat-exhaustive";
    case DecisionStageId::kBruteForceLemma1:
      return "brute-force-lemma1";
  }
  return "?";
}

}  // namespace dislock
