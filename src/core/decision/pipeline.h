#ifndef DISLOCK_CORE_DECISION_PIPELINE_H_
#define DISLOCK_CORE_DECISION_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/decision/procedure.h"

namespace dislock {

/// Composes DecisionProcedures into the cheap-test-first cascade: stages
/// run in order; inapplicable stages are skipped; the first stage that
/// decides ends the run (later stages are counted as skipped); if no stage
/// decides the verdict is kUnknown. Per-stage counters and wall-clock land
/// in PairSafetyReport::pipeline.
///
/// The default pipeline is the paper's solver cascade:
///   1. Theorem1Scc        — sufficient SCC test, any number of sites
///   2. Theorem2TwoSite    — complete at <= 2 sites (terminal when it runs)
///   3. Corollary2Closure  — dominator-closure loop, exact when the
///                           enumeration covers all dominators
///   4. SatExhaustive      — SAT-guided dominator enumeration (src/sat/)
///   5. BruteForceLemma1   — exhaustive extension-pair fallback
class DecisionPipeline {
 public:
  DecisionPipeline() = default;

  /// The five registered stages in default order (shared instance; stages
  /// are stateless so one pipeline serves every thread).
  static const DecisionPipeline& Default();

  /// A fresh pipeline with the default five stages (for callers that want
  /// to append custom procedures).
  static DecisionPipeline MakeDefault();

  void Add(std::unique_ptr<DecisionProcedure> stage);

  std::vector<std::string> StageNames() const;

  /// Runs the cascade on one pair. Deterministic given (pair,
  /// ctx->config()) — see DecisionProcedure's contract.
  PairSafetyReport Decide(const Transaction& t1, const Transaction& t2,
                          EngineContext* ctx) const;

 private:
  std::vector<std::unique_ptr<DecisionProcedure>> stages_;
};

}  // namespace dislock

#endif  // DISLOCK_CORE_DECISION_PIPELINE_H_
