#ifndef DISLOCK_CORE_DECISION_STATS_H_
#define DISLOCK_CORE_DECISION_STATS_H_

#include <array>
#include <cstdint>

namespace dislock {

/// The five registered stages of the default decision pipeline, in run
/// order. The enum doubles as the index into PipelineStats::stages.
enum class DecisionStageId {
  kTheorem1Scc = 0,
  kTheorem2TwoSite,
  kCorollary2Closure,
  kSatExhaustive,
  kBruteForceLemma1,
};

inline constexpr int kNumDecisionStages = 5;

/// Stable stage name: "theorem1-scc", "theorem2-two-site",
/// "corollary2-closure", "sat-exhaustive", "brute-force-lemma1".
const char* DecisionStageName(DecisionStageId stage);

/// Per-stage counters. For a single pair analysis each of
/// attempts/decided/skipped is 0 or 1; MultiSafetyReport and AnalysisResult
/// carry sums over many pairs.
///
/// Every field except wall_ms is a pure function of (pair, config) — the
/// parallel engine's deterministic reduction reconstructs them in serial
/// scan order, so JSON renderings stay bit-identical at any thread count.
/// wall_ms is measured wall-clock and therefore EXCLUDED from all JSON
/// emitters; it feeds the dislock_bench per-stage timing columns only.
struct StageCounters {
  int64_t attempts = 0;          ///< stage ran its Decide()
  int64_t decided = 0;           ///< stage terminated the pipeline
  int64_t skipped = 0;           ///< inapplicable, cancelled, or already decided
  int64_t budget_exhausted = 0;  ///< stage gave up on its budget (not silent)
  /// Deterministic stage-specific work units: dominators enumerated
  /// (corollary2-closure), SAT models examined (sat-exhaustive), extension
  /// pairs checked (brute-force-lemma1), 1 for the constant-work tests.
  int64_t work = 0;
  double wall_ms = 0.0;  ///< measured; never serialized (nondeterministic)

  void Add(const StageCounters& other) {
    attempts += other.attempts;
    decided += other.decided;
    skipped += other.skipped;
    budget_exhausted += other.budget_exhausted;
    work += other.work;
    wall_ms += other.wall_ms;
  }
};

/// One counter block per registered stage, indexed by DecisionStageId.
struct PipelineStats {
  std::array<StageCounters, kNumDecisionStages> stages;

  StageCounters& at(DecisionStageId stage) {
    return stages[static_cast<int>(stage)];
  }
  const StageCounters& at(DecisionStageId stage) const {
    return stages[static_cast<int>(stage)];
  }

  void Add(const PipelineStats& other) {
    for (int s = 0; s < kNumDecisionStages; ++s) {
      stages[s].Add(other.stages[s]);
    }
  }
};

}  // namespace dislock

#endif  // DISLOCK_CORE_DECISION_STATS_H_
