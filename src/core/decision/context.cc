#include "core/decision/context.h"

#include "core/verdict_cache.h"

namespace dislock {

EngineContext::EngineContext(const EngineConfig& config) : config_(config) {}

EngineContext::~EngineContext() = default;

int EngineContext::EffectiveThreads() const {
  return config_.num_threads <= 0 ? ThreadPool::HardwareThreads()
                                  : config_.num_threads;
}

ThreadPool* EngineContext::pool() {
  const int threads = EffectiveThreads();
  if (threads <= 1) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(threads);
    pool_->set_trace_recorder(config_.trace);
  }
  return pool_.get();
}

PairVerdictCache* EngineContext::cache() {
  if (config_.cache != nullptr) return config_.cache;
  if (!config_.enable_cache) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (owned_cache_ == nullptr) {
    owned_cache_ = std::make_unique<PairVerdictCache>();
  }
  return owned_cache_.get();
}

}  // namespace dislock
