#include "core/decision/context.h"

#include "cache/verdict_cache.h"

namespace dislock {

EngineContext::EngineContext(const EngineConfig& config) : config_(config) {}

EngineContext::~EngineContext() = default;

int EngineContext::EffectiveThreads() const {
  return config_.num_threads <= 0 ? ThreadPool::HardwareThreads()
                                  : config_.num_threads;
}

ThreadPool* EngineContext::pool() {
  const int threads = EffectiveThreads();
  if (threads <= 1) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(threads);
    pool_->set_trace_recorder(config_.trace);
  }
  return pool_.get();
}

PairVerdictCache* EngineContext::cache() {
  // An external cache always wins; its owner is responsible for attaching
  // (or not attaching) a persistent store to it.
  if (config_.cache != nullptr) return config_.cache;
  if (!config_.enable_cache && config_.store == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (owned_cache_ == nullptr) {
    owned_cache_ = std::make_unique<PairVerdictCache>();
    // A configured tier-2 store implies a tier-1 memo in front of it: the
    // memo keeps the hot path allocation-free and the store makes the
    // verdicts durable across runs.
    owned_cache_->set_store(config_.store);
  }
  return owned_cache_.get();
}

}  // namespace dislock
