#ifndef DISLOCK_CORE_DECISION_CONFIG_H_
#define DISLOCK_CORE_DECISION_CONFIG_H_

#include <cstdint>

namespace dislock {

class PairVerdictCache;
namespace cache {
class VerdictStore;
}  // namespace cache
namespace obs {
class StatsSink;
class TraceRecorder;
}  // namespace obs

/// The one tuning struct of the decision engine. It replaces the formerly
/// duplicated SafetyOptions / MultiSafetyOptions / AnalysisOptions trio
/// (those names survive as aliases of this type), so a single config flows
/// unchanged from a tool flag through the analysis passes into every
/// pipeline stage.
struct EngineConfig {
  // ---- Per-pair stage budgets (the DecisionPipeline) ----

  /// Budget for the Lemma 1 brute-force stage (pairs of linear
  /// extensions); 0 disables the stage.
  int64_t max_extension_pairs = 1 << 20;

  /// How many dominators the Corollary 2 closure stage enumerates on pairs
  /// spanning three or more sites. When the enumeration is complete (the
  /// pair has at most this many dominators) the closure loop decides safety
  /// EXACTLY — this knob is the "2^n" of the coNP-complete regime.
  int64_t max_dominators = 1024;

  /// Cumulative DPLL decision budget for the SAT-exhaustive stage, which
  /// routes src/sat/ (cnf + solver) into the >= 3-site fallback: dominators
  /// of D are enumerated as models of a predecessor-closure CNF and each
  /// model's closure is tested. 0 disables the stage (restoring the
  /// pre-pipeline cascade exactly).
  int64_t max_sat_decisions = 1 << 20;

  // ---- System-level budgets (Proposition 2 / AnalyzeMultiSafety) ----

  /// Cap on the number of directed cycles of G examined by condition (b).
  int64_t max_cycles = 1 << 14;

  /// Include directed 2-cycles (Ti, Tj) in condition (b). The pairwise test
  /// of condition (a) already decides pairs exactly, so the default skips
  /// them; enabling is useful for experiments.
  bool include_two_cycles = false;

  /// State budget for the deadlock pass's reachable-state search
  /// (core/deadlock.h). The state space is a product of down-set lattices,
  /// so the default is deliberately modest: exceeding it downgrades the
  /// verdict to DL206 (deadlock-undecided) instead of stalling the
  /// analysis. Tools that run the search standalone pass larger budgets.
  int64_t max_deadlock_states = 1 << 14;

  // ---- Execution ----

  /// Run the engine's compute core on the flat CSR + bitset kernels
  /// (graph/csr.h, the arena-backed SCC / reachability / closure / cycle
  /// implementations) instead of the pointer-heavy legacy structures.
  /// Verdicts, reports, and all serialized counters are bit-identical
  /// either way — the flag exists so the differential property tests can
  /// run both implementations against each other, and as an escape hatch.
  bool use_flat_kernel = true;

  /// Worker threads for the parallel engine (pair tests, cycle checks, the
  /// per-pair dominator fan-out). 1 = serial (default), 0 = one per
  /// hardware thread. Reports are bit-identical at any thread count.
  int num_threads = 1;

  /// Optional external pair-verdict memo shared across analyses; not
  /// owned. Overrides enable_cache.
  PairVerdictCache* cache = nullptr;

  /// When true and `cache` is null, the EngineContext owns a private
  /// PairVerdictCache for the lifetime of the context (what the tools'
  /// --cache flag toggles).
  bool enable_cache = false;

  /// Optional persistent tier-2 verdict store (cache/verdict_store.h); not
  /// owned, null = off, exactly like the obs pointers below. When set, the
  /// EngineContext attaches it to the context-owned tier-1 cache (creating
  /// that cache even when enable_cache is false), so memory misses fall
  /// through to disk and fresh verdicts are buffered for the next Flush.
  /// When an external `cache` is supplied instead, its owner decides
  /// whether to attach the store (PairVerdictCache::set_store) — the
  /// engine never rewires a cache it does not own. Serving a verdict from
  /// the store never changes what the engine would compute, only whether
  /// the pair procedure runs (docs/caching.md pins the exact byte-identity
  /// contract).
  cache::VerdictStore* store = nullptr;

  // ---- Observability ----

  /// Optional span recorder (obs/trace.h); not owned. Null (the default)
  /// means tracing off — every instrumentation site degrades to a no-op.
  /// Flows with the config through every engine entry point, so one
  /// --trace=FILE flag covers pair tests, the multi engine, the
  /// incremental engine, and the pool's workers. Recording spans never
  /// changes a report byte: timing lands only in the trace file.
  obs::TraceRecorder* trace = nullptr;

  /// Optional metrics sink (obs/stats_sink.h); not owned. Only the
  /// OUTERMOST report owner pours into it — PassManager::Run, the session
  /// loop, or the tool itself (core/stats_export.h) — never the nested
  /// library stages, so each analysis is counted exactly once. Like
  /// `trace`, setting it never changes a report byte.
  obs::StatsSink* stats = nullptr;
};

}  // namespace dislock

#endif  // DISLOCK_CORE_DECISION_CONFIG_H_
