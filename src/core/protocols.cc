#include "core/protocols.h"

#include <algorithm>

#include "txn/linear_extension.h"
#include "util/string_util.h"

namespace dislock {

Result<EntityForest> EntityForest::Make(
    const DistributedDatabase& db,
    const std::vector<std::pair<EntityId, EntityId>>& child_parent) {
  EntityForest forest;
  forest.parent.assign(db.NumEntities(), kInvalidEntity);
  for (const auto& [child, parent] : child_parent) {
    if (!db.ValidEntity(child) || !db.ValidEntity(parent)) {
      return Status::InvalidArgument("unknown entity in forest edge");
    }
    if (forest.parent[child] != kInvalidEntity) {
      return Status::InvalidArgument(
          StrCat("entity '", db.NameOf(child), "' has two parents"));
    }
    forest.parent[child] = parent;
  }
  // Cycle check: walking up from any node must terminate.
  for (EntityId e = 0; e < db.NumEntities(); ++e) {
    EntityId walk = e;
    for (int hops = 0; walk != kInvalidEntity; ++hops) {
      if (hops > db.NumEntities()) {
        return Status::InvalidArgument("forest edges contain a cycle");
      }
      walk = forest.parent[walk];
    }
  }
  return forest;
}

EntityForest InferEntityForest(const TransactionSystem& system) {
  const int n = system.db().NumEntities();
  std::vector<std::vector<int>> held(n, std::vector<int>(n, 0));
  for (int i = 0; i < system.NumTransactions(); ++i) {
    const Transaction& t = system.txn(i);
    for (EntityId x : t.LockedEntities()) {
      for (EntityId y : t.LockedEntities()) {
        if (x == y) continue;
        if (t.Precedes(t.LockStep(x), t.LockStep(y)) &&
            t.Precedes(t.LockStep(y), t.UnlockStep(x))) {
          ++held[x][y];  // y locked while x is held
        }
      }
    }
  }
  EntityForest forest;
  forest.parent.assign(n, kInvalidEntity);
  for (EntityId y = 0; y < n; ++y) {
    int best = 0;
    EntityId candidate = kInvalidEntity;
    for (EntityId x = 0; x < n; ++x) {
      if (held[x][y] > best) {
        best = held[x][y];
        candidate = x;
      }
    }
    if (candidate == kInvalidEntity) continue;
    // Adding y -> candidate must not close a cycle; parent pointers
    // assigned so far are acyclic, so the ancestor walk terminates.
    bool cycle = false;
    for (EntityId a = candidate; a != kInvalidEntity; a = forest.parent[a]) {
      if (a == y) {
        cycle = true;
        break;
      }
    }
    if (!cycle) forest.parent[y] = candidate;
  }
  return forest;
}

Status CheckTreeProtocol(const Transaction& txn, const EntityForest& forest) {
  const DistributedDatabase& db = txn.db();
  std::vector<EntityId> locked = txn.LockedEntities();
  if (locked.empty()) return Status::OK();

  // Classify each locked entity: "parented" if its lock happens while the
  // parent is held; otherwise it is an entry-point candidate.
  std::vector<EntityId> entry_candidates;
  for (EntityId x : locked) {
    EntityId p = static_cast<size_t>(x) < forest.parent.size()
                     ? forest.parent[x]
                     : kInvalidEntity;
    bool parented = false;
    if (p != kInvalidEntity && txn.LockStep(p) != kInvalidStep &&
        txn.UnlockStep(p) != kInvalidStep) {
      parented = txn.Precedes(txn.LockStep(p), txn.LockStep(x)) &&
                 txn.Precedes(txn.LockStep(x), txn.UnlockStep(p));
    }
    if (!parented) entry_candidates.push_back(x);
  }
  if (entry_candidates.size() > 1) {
    return Status::InvalidModel(
        StrCat("transaction ", txn.name(), ": entities '",
               db.NameOf(entry_candidates[0]), "' and '",
               db.NameOf(entry_candidates[1]),
               "' are both locked without holding their parents"));
  }
  // The entry point must be locked first.
  EntityId entry = entry_candidates.empty() ? locked[0] : entry_candidates[0];
  if (!entry_candidates.empty()) {
    for (EntityId x : locked) {
      if (x == entry) continue;
      if (!txn.Precedes(txn.LockStep(entry), txn.LockStep(x))) {
        return Status::InvalidModel(
            StrCat("transaction ", txn.name(), ": entry point '",
                   db.NameOf(entry), "' is not locked before '",
                   db.NameOf(x), "'"));
      }
    }
  }
  return Status::OK();
}

Result<Transaction> MakeTreeProtocolTransaction(
    const DistributedDatabase* db, const EntityForest& forest,
    const std::string& name, int num_entities, Rng* rng, EntityId start) {
  if (db->NumEntities() == 0 || num_entities <= 0) {
    return Status::InvalidArgument("need at least one entity");
  }
  // Children lists.
  std::vector<std::vector<EntityId>> children(db->NumEntities());
  for (EntityId e = 0; e < db->NumEntities(); ++e) {
    EntityId p = forest.parent[e];
    if (p != kInvalidEntity) children[p].push_back(e);
  }
  // Grow a random connected subtree from the start entity.
  if (start == kInvalidEntity) {
    start = static_cast<EntityId>(
        rng->Index(static_cast<size_t>(db->NumEntities())));
  } else if (!db->ValidEntity(start)) {
    return Status::InvalidArgument("invalid start entity");
  }
  std::vector<bool> in_subtree(db->NumEntities(), false);
  in_subtree[start] = true;
  std::vector<EntityId> frontier;
  for (EntityId c : children[start]) frontier.push_back(c);
  int size = 1;
  while (size < num_entities && !frontier.empty()) {
    size_t pick = rng->Index(frontier.size());
    EntityId e = frontier[pick];
    frontier[pick] = frontier.back();
    frontier.pop_back();
    in_subtree[e] = true;
    ++size;
    for (EntityId c : children[e]) frontier.push_back(c);
  }

  // Emit the protocol-compliant total order, releasing each node right
  // after its (chosen) children are locked.
  Transaction txn(db, name);
  StepId prev = kInvalidStep;
  auto emit = [&](StepKind kind, EntityId e) {
    StepId s = txn.AddStep(kind, e);
    if (prev != kInvalidStep) txn.AddPrecedence(prev, s);
    prev = s;
  };
  emit(StepKind::kLock, start);
  // Iterative pre-order: when visiting x (already locked), update it, lock
  // its chosen children, unlock x, then recurse into the children.
  std::vector<EntityId> visit_stack{start};
  while (!visit_stack.empty()) {
    EntityId x = visit_stack.back();
    visit_stack.pop_back();
    emit(StepKind::kUpdate, x);
    std::vector<EntityId> kids;
    for (EntityId c : children[x]) {
      if (in_subtree[c]) kids.push_back(c);
    }
    rng->Shuffle(&kids);
    for (EntityId c : kids) emit(StepKind::kLock, c);
    emit(StepKind::kUnlock, x);
    for (EntityId c : kids) visit_stack.push_back(c);
  }
  Status check = CheckTreeProtocol(txn, forest);
  if (!check.ok()) {
    return Status::Internal("generated transaction violates the protocol: " +
                            check.ToString());
  }
  return txn;
}

Result<std::vector<Transaction>> CentralizedImage(const Transaction& txn,
                                                  int64_t max_extensions) {
  std::vector<Transaction> image;
  Status inner = Status::OK();
  Status st = EnumerateLinearExtensions(
      txn, max_extensions, [&](const std::vector<StepId>& order) {
        auto lin = Linearize(txn, order);
        if (!lin.ok()) {
          inner = lin.status();
          return false;
        }
        lin->set_name(StrCat(txn.name(), "#", image.size()));
        image.push_back(std::move(lin).value());
        return true;
      });
  DISLOCK_RETURN_NOT_OK(inner);
  DISLOCK_RETURN_NOT_OK(st);
  return image;
}

}  // namespace dislock
