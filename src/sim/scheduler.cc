#include "sim/scheduler.h"

#include "sim/lock_manager.h"

namespace dislock {

RunResult SimulateRun(const TransactionSystem& system, Rng* rng) {
  RunResult result;
  const int k = system.NumTransactions();
  DistributedLockManager locks(&system.db(), k);

  // Remaining-predecessor counts per step.
  std::vector<std::vector<int>> indegree(k);
  int remaining = 0;
  for (int i = 0; i < k; ++i) {
    const Digraph& g = system.txn(i).order();
    indegree[i].assign(g.NumNodes(), 0);
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      for (NodeId v : g.OutNeighbors(u)) ++indegree[i][v];
    }
    remaining += g.NumNodes();
  }

  Schedule schedule;
  while (remaining > 0) {
    // Collect enabled steps.
    std::vector<SysStep> enabled;
    for (int i = 0; i < k; ++i) {
      const Transaction& t = system.txn(i);
      for (StepId s = 0; s < t.NumSteps(); ++s) {
        if (indegree[i][s] != 0) continue;
        const Step& step = t.GetStep(s);
        if (step.kind == StepKind::kLock &&
            !locks.MayAcquire(step.entity, i, step.shared)) {
          continue;
        }
        if (step.kind == StepKind::kUnlock) {
          bool holds = step.shared ? locks.IsReading(step.entity, i)
                                   : locks.WriterOf(step.entity) == i;
          if (!holds) continue;
        }
        enabled.push_back({i, s});
      }
    }
    if (enabled.empty()) {
      result.deadlocked = true;
      return result;
    }
    SysStep pick = enabled[rng->Index(enabled.size())];
    const Transaction& t = system.txn(pick.txn);
    const Step& step = t.GetStep(pick.step);
    if (step.kind == StepKind::kLock) {
      Status st = locks.Acquire(step.entity, pick.txn, step.shared);
      DISLOCK_CHECK(st.ok()) << st.ToString();
    } else if (step.kind == StepKind::kUnlock) {
      Status st = locks.Release(step.entity, pick.txn, step.shared);
      DISLOCK_CHECK(st.ok()) << st.ToString();
    }
    indegree[pick.txn][pick.step] = -1;
    for (NodeId v : t.order().OutNeighbors(pick.step)) {
      --indegree[pick.txn][v];
    }
    schedule.Append(pick.txn, pick.step);
    ++result.steps_executed;
    --remaining;
  }
  result.schedule = std::move(schedule);
  return result;
}

RecoveryRunResult SimulateRunWithRecovery(const TransactionSystem& system,
                                          Rng* rng, int max_aborts) {
  RecoveryRunResult result;
  const int k = system.NumTransactions();
  DistributedLockManager locks(&system.db(), k);

  std::vector<std::vector<int>> base_indegree(k);
  std::vector<std::vector<int>> indegree(k);
  int remaining = 0;
  for (int i = 0; i < k; ++i) {
    const Digraph& g = system.txn(i).order();
    base_indegree[i].assign(g.NumNodes(), 0);
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      for (NodeId v : g.OutNeighbors(u)) ++base_indegree[i][v];
    }
    indegree[i] = base_indegree[i];
    remaining += g.NumNodes();
  }

  std::vector<SysStep> events;  // includes aborted attempts, pruned later
  std::vector<bool> aborted_marker;

  while (remaining > 0) {
    std::vector<SysStep> enabled;
    std::vector<int> blocked;  // transactions blocked on a lock
    for (int i = 0; i < k; ++i) {
      const Transaction& t = system.txn(i);
      bool blocked_on_lock = false;
      for (StepId s = 0; s < t.NumSteps(); ++s) {
        if (indegree[i][s] != 0) continue;
        const Step& step = t.GetStep(s);
        if (step.kind == StepKind::kLock &&
            !locks.MayAcquire(step.entity, i, step.shared)) {
          blocked_on_lock = true;
          continue;
        }
        if (step.kind == StepKind::kUnlock) {
          bool holds = step.shared ? locks.IsReading(step.entity, i)
                                   : locks.WriterOf(step.entity) == i;
          if (!holds) continue;
        }
        enabled.push_back({i, s});
      }
      if (blocked_on_lock) blocked.push_back(i);
    }

    if (enabled.empty()) {
      // Deadlock: abort a random blocked victim.
      if (blocked.empty() || result.aborts >= max_aborts) {
        result.gave_up = true;
        return result;
      }
      int victim = blocked[rng->Index(blocked.size())];
      ++result.aborts;
      const Transaction& t = system.txn(victim);
      // Release the victim's locks and restore its work to "not executed".
      int executed_steps = 0;
      for (StepId s = 0; s < t.NumSteps(); ++s) {
        if (indegree[victim][s] == -1) ++executed_steps;
      }
      for (EntityId e : t.LockedEntities()) {
        StepId l = t.LockStep(e);
        StepId u = t.UnlockStep(e);
        if (indegree[victim][l] == -1 && indegree[victim][u] != -1) {
          Status st = locks.Release(e, victim, t.GetStep(l).shared);
          DISLOCK_CHECK(st.ok()) << st.ToString();
        }
      }
      indegree[victim] = base_indegree[victim];
      remaining += executed_steps;
      // Mark the victim's past events as aborted.
      for (size_t i = 0; i < events.size(); ++i) {
        if (events[i].txn == victim) aborted_marker[i] = true;
      }
      continue;
    }

    SysStep pick = enabled[rng->Index(enabled.size())];
    const Transaction& t = system.txn(pick.txn);
    const Step& step = t.GetStep(pick.step);
    if (step.kind == StepKind::kLock) {
      Status st = locks.Acquire(step.entity, pick.txn, step.shared);
      DISLOCK_CHECK(st.ok()) << st.ToString();
    } else if (step.kind == StepKind::kUnlock) {
      Status st = locks.Release(step.entity, pick.txn, step.shared);
      DISLOCK_CHECK(st.ok()) << st.ToString();
    }
    indegree[pick.txn][pick.step] = -1;
    for (NodeId v : t.order().OutNeighbors(pick.step)) {
      --indegree[pick.txn][v];
    }
    events.push_back(pick);
    aborted_marker.push_back(false);
    ++result.steps_executed;
    --remaining;
  }

  Schedule committed;
  for (size_t i = 0; i < events.size(); ++i) {
    if (!aborted_marker[i]) committed.Append(events[i].txn, events[i].step);
  }
  result.schedule = std::move(committed);
  return result;
}

MonteCarloStats SampleSafety(const TransactionSystem& system, int64_t runs,
                             Rng* rng, bool keep_going) {
  MonteCarloStats stats;
  for (int64_t r = 0; r < runs; ++r) {
    ++stats.runs;
    RunResult run = SimulateRun(system, rng);
    if (run.deadlocked) {
      ++stats.deadlocked;
      continue;
    }
    ++stats.completed;
    if (!IsSerializable(system, *run.schedule)) {
      ++stats.non_serializable;
      if (!stats.witness.has_value()) stats.witness = *run.schedule;
      if (!keep_going) return stats;
    }
  }
  return stats;
}

}  // namespace dislock
