#include "sim/lock_manager.h"

#include "util/string_util.h"

namespace dislock {

bool SiteLockManager::MayAcquire(EntityId e, int txn, bool shared) const {
  (void)txn;
  if (writer_[e] != kFree) return false;
  return shared || reader_count_[e] == 0;
}

Status SiteLockManager::Acquire(EntityId e, int txn, bool shared) {
  if (!db_->ValidEntity(e) || db_->SiteOf(e) != site_) {
    return Status::InvalidArgument(
        StrCat("entity ", e, " is not stored at site ", site_));
  }
  if (!MayAcquire(e, txn, shared)) {
    return Status::InvalidArgument(
        StrCat("entity '", db_->NameOf(e), "' is not available in ",
               shared ? "shared" : "exclusive", " mode"));
  }
  if (shared) {
    reading_[e][txn] = 1;
    ++reader_count_[e];
  } else {
    writer_[e] = txn;
  }
  return Status::OK();
}

Status SiteLockManager::Release(EntityId e, int txn, bool shared) {
  if (!db_->ValidEntity(e) || db_->SiteOf(e) != site_) {
    return Status::InvalidArgument(
        StrCat("entity ", e, " is not stored at site ", site_));
  }
  if (shared) {
    if (!reading_[e][txn]) {
      return Status::InvalidArgument(
          StrCat("T", txn + 1, " holds no read lock on '", db_->NameOf(e),
                 "'"));
    }
    reading_[e][txn] = 0;
    --reader_count_[e];
  } else {
    if (writer_[e] != txn) {
      return Status::InvalidArgument(
          StrCat("T", txn + 1, " does not hold '", db_->NameOf(e), "'"));
    }
    writer_[e] = kFree;
  }
  return Status::OK();
}

}  // namespace dislock
