#ifndef DISLOCK_SIM_SCHEDULER_H_
#define DISLOCK_SIM_SCHEDULER_H_

#include <optional>

#include "txn/schedule.h"
#include "txn/system.h"
#include "util/random.h"
#include "util/status.h"

namespace dislock {

/// Outcome of one simulated concurrent run.
struct RunResult {
  /// Completed legal schedule; empty when the run deadlocked.
  std::optional<Schedule> schedule;
  /// Steps executed before the run finished or stuck.
  int steps_executed = 0;
  /// True iff the run reached a state where every pending step is blocked
  /// on a lock (a distributed deadlock).
  bool deadlocked = false;
};

/// Simulates one concurrent execution of the system: repeatedly picks a
/// uniformly random *enabled* step (all its transaction predecessors done,
/// and — for lock steps — the site's lock table grants it) and executes it
/// against per-site lock managers. Runs until all steps are done or
/// everything is blocked.
///
/// This is the operational counterpart of the paper's schedules: every
/// completed run is a legal schedule, and every legal schedule has nonzero
/// probability of being produced.
RunResult SimulateRun(const TransactionSystem& system, Rng* rng);

/// Statistics from Monte-Carlo safety sampling.
struct MonteCarloStats {
  int64_t runs = 0;
  int64_t completed = 0;
  int64_t deadlocked = 0;
  int64_t non_serializable = 0;
  /// First non-serializable schedule found, if any.
  std::optional<Schedule> witness;
};

/// Outcome of a run under deadlock recovery.
struct RecoveryRunResult {
  /// The COMMITTED schedule: only the steps of each transaction's final,
  /// successful attempt, in execution order. Aborted attempts' steps are
  /// discarded (their locks were released at abort, so the committed
  /// schedule is still a legal schedule of the system). Empty if gave_up.
  std::optional<Schedule> schedule;
  /// Number of aborts performed.
  int aborts = 0;
  /// Steps executed including aborted work.
  int steps_executed = 0;
  /// True if max_aborts was hit before completion.
  bool gave_up = false;
};

/// Like SimulateRun, but with abort-and-restart deadlock recovery: when
/// every pending step is blocked, a random blocked transaction is aborted —
/// its locks released and its progress reset — and execution continues.
/// This is the standard victim-restart discipline of real lock managers;
/// the committed schedule it produces is a legal schedule of the system, so
/// all the safety machinery applies to it unchanged.
RecoveryRunResult SimulateRunWithRecovery(const TransactionSystem& system,
                                          Rng* rng, int max_aborts = 64);

/// Samples `runs` simulated executions and checks each completed schedule
/// for serializability. For a safe system non_serializable is always 0; for
/// an unsafe system the sampler eventually finds a witness (each
/// non-serializable schedule has nonzero probability). Stops early at the
/// first witness unless `keep_going`.
MonteCarloStats SampleSafety(const TransactionSystem& system, int64_t runs,
                             Rng* rng, bool keep_going = false);

}  // namespace dislock

#endif  // DISLOCK_SIM_SCHEDULER_H_
