#include "sim/executor.h"

#include <algorithm>

namespace dislock {

namespace {

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 29;
  return h;
}

}  // namespace

ExecutionResult ExecuteSchedule(const TransactionSystem& system,
                                const Schedule& schedule) {
  const int k = system.NumTransactions();
  ExecutionResult result;
  result.final_state.resize(system.db().NumEntities());
  for (EntityId e = 0; e < system.db().NumEntities(); ++e) {
    result.final_state[e] = Mix(0x1517a1ULL, static_cast<uint64_t>(e));
  }

  // Captured temp per (txn, update step).
  std::vector<std::vector<uint64_t>> temp(k);
  for (int i = 0; i < k; ++i) temp[i].assign(system.txn(i).NumSteps(), 0);

  for (const SysStep& ev : schedule.events()) {
    const Transaction& t = system.txn(ev.txn);
    const Step& step = t.GetStep(ev.step);
    if (step.kind != StepKind::kUpdate) continue;
    // temp_s := e(s)
    temp[ev.txn][ev.step] = result.final_state[step.entity];
    // e(s) := f_s(temps of all predecessors, including s itself). The
    // predecessor SET is schedule-independent, so mixing in canonical step
    // order makes equal hashes mean equal symbolic expressions.
    uint64_t h = Mix(0xf5f5f5f5ULL, static_cast<uint64_t>(ev.txn) << 32 |
                                        static_cast<uint64_t>(ev.step));
    for (StepId s = 0; s < t.NumSteps(); ++s) {
      if (t.GetStep(s).kind != StepKind::kUpdate) continue;
      if (s == ev.step || t.Precedes(s, ev.step)) {
        h = Mix(h, temp[ev.txn][s]);
      }
    }
    result.final_state[step.entity] = h;
  }
  return result;
}

Result<bool> SerializableByExecution(const TransactionSystem& system,
                                     const Schedule& schedule) {
  const int k = system.NumTransactions();
  if (k > 8) {
    return Status::ResourceExhausted(
        "SerializableByExecution tries all k! serial orders; k > 8");
  }
  ExecutionResult actual = ExecuteSchedule(system, schedule);
  std::vector<int> perm(k);
  for (int i = 0; i < k; ++i) perm[i] = i;
  do {
    auto serial = SerialSchedule(system, perm);
    if (!serial.ok()) return serial.status();
    ExecutionResult expected = ExecuteSchedule(system, serial.value());
    if (expected.final_state == actual.final_state) return true;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return false;
}

}  // namespace dislock
