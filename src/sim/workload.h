#ifndef DISLOCK_SIM_WORKLOAD_H_
#define DISLOCK_SIM_WORKLOAD_H_

#include <memory>
#include <vector>

#include "txn/system.h"
#include "util/random.h"

namespace dislock {

/// Parameters for the random distributed-transaction generator.
struct WorkloadParams {
  /// Number of sites of the database.
  int num_sites = 2;
  /// Number of entities, spread round-robin over the sites.
  int num_entities = 4;
  /// Number of transactions in the system.
  int num_transactions = 2;
  /// Probability that a transaction locks any given entity.
  double lock_probability = 0.75;
  /// Probability of an update step inside each lock section.
  double update_probability = 0.0;
  /// Probability that a lock section is shared (read-only). Shared
  /// sections never contain updates regardless of update_probability.
  double shared_probability = 0.0;
  /// Number of random cross-site precedence arcs attempted per transaction
  /// (each sampled arc is kept only if it does not create a cycle).
  int cross_site_arcs = 2;
};

/// A generated workload: a database plus a transaction system over it.
struct Workload {
  std::shared_ptr<DistributedDatabase> db;
  std::shared_ptr<TransactionSystem> system;
};

/// Generates a random well-formed locked transaction system.
///
/// Per transaction and site, the locked entities of that site are arranged
/// in a uniformly random *balanced-parenthesis* interleaving of their
/// lock/unlock steps (so sections at a site may be nested or disjoint),
/// chained into the site-local total order the model requires. Cross-site
/// arcs are then added from a random earlier step to a random later step of
/// a random global linear seed order, which keeps the order acyclic.
///
/// Every generated transaction passes ValidateTransaction.
Workload MakeRandomWorkload(const WorkloadParams& params, Rng* rng);

/// Generates a random totally ordered (centralized-style) transaction over
/// `num_entities` single-site entities: a random legal shuffle of lock,
/// update and unlock steps. Used by the centralized baselines.
Workload MakeRandomTotalOrderPair(int num_entities, Rng* rng);

/// Deterministic scaling workload for the Corollary 1 benchmark: a two-site
/// pair with `num_entities` commonly locked entities (n ~ 4 * num_entities
/// steps) whose D graph is strongly connected — the worst case for the SCC
/// test (it must look at every arc).
Workload MakeTwoSiteScalingPair(int num_entities, bool safe, Rng* rng);

}  // namespace dislock

#endif  // DISLOCK_SIM_WORKLOAD_H_
