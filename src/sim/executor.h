#ifndef DISLOCK_SIM_EXECUTOR_H_
#define DISLOCK_SIM_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "txn/schedule.h"
#include "txn/system.h"
#include "util/status.h"

namespace dislock {

/// Symbolic execution of a schedule under the paper's update semantics:
/// each update step s executes, indivisibly,
///   temp_s := e(s);  e(s) := f_s(temp_s1, ..., temp_sk)
/// where s1..sk are the steps preceding s in its transaction. The update
/// functions f_s are modeled as a random oracle (a collision-resistant
/// 64-bit hash of the function identity and its arguments), so two
/// executions reach equal final states iff they are equivalent under
/// (essentially) all interpretations of the f_s — the paper's notion of
/// schedule equivalence, made executable.
struct ExecutionResult {
  /// Final symbolic value of every entity.
  std::vector<uint64_t> final_state;
};

/// Executes a legal schedule symbolically. Lock/unlock steps do not touch
/// values; they are assumed already validated by CheckScheduleLegal.
ExecutionResult ExecuteSchedule(const TransactionSystem& system,
                                const Schedule& schedule);

/// Operational serializability: true iff the schedule's final state equals
/// the final state of running the transactions serially in some order
/// (all k! orders are tried — use only for small k). This is an
/// implementation-independent cross-check of AnalyzeSerializability.
///
/// Caveat that vindicates the paper's model rules: the two notions coincide
/// only when every lock section contains at least one update — the
/// well-formedness clause of Section 2 ("there is at least one update x
/// step between them"; enforceable via
/// ValidateOptions::require_update_between_locks). A lock section with no
/// update is "superfluous locking": it constrains scheduling and shows up
/// in the conflict-based analysis, but cannot affect any execution, so this
/// function may report true where AnalyzeSerializability reports false.
Result<bool> SerializableByExecution(const TransactionSystem& system,
                                     const Schedule& schedule);

}  // namespace dislock

#endif  // DISLOCK_SIM_EXECUTOR_H_
