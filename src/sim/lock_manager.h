#ifndef DISLOCK_SIM_LOCK_MANAGER_H_
#define DISLOCK_SIM_LOCK_MANAGER_H_

#include <vector>

#include "txn/database.h"
#include "util/status.h"

namespace dislock {

/// The lock table of one site: a reader/writer lock per entity. Exclusive
/// (write) locks exclude everything; shared (read) locks exclude only
/// writers. Entities of other sites are rejected — mirroring that in a
/// distributed system a site can only arbitrate its own granules.
class SiteLockManager {
 public:
  SiteLockManager(const DistributedDatabase* db, SiteId site, int num_txns)
      : db_(db),
        site_(site),
        writer_(db->NumEntities(), kFree),
        reader_count_(db->NumEntities(), 0),
        reading_(db->NumEntities(), std::vector<char>(num_txns, 0)) {}

  /// Acquires `e` for transaction `txn`. Fails if `e` is not stored at this
  /// site or the request conflicts with current holders (no waiting — the
  /// simulator's scheduler retries instead, which is how it observes
  /// deadlocks).
  Status Acquire(EntityId e, int txn, bool shared = false);

  /// Releases `e`; fails unless `txn` holds it in the given mode.
  Status Release(EntityId e, int txn, bool shared = false);

  /// May `txn` acquire `e` in the given mode right now?
  bool MayAcquire(EntityId e, int txn, bool shared) const;

  /// Exclusive holder of `e`, or kFree.
  int WriterOf(EntityId e) const { return writer_[e]; }
  int ReaderCount(EntityId e) const { return reader_count_[e]; }
  bool IsReading(EntityId e, int txn) const {
    return reading_[e][txn] != 0;
  }

  /// True iff `txn` may update `e` right now (holds its write lock).
  bool MayUpdate(EntityId e, int txn) const { return writer_[e] == txn; }

  SiteId site() const { return site_; }

  static constexpr int kFree = -1;

 private:
  const DistributedDatabase* db_;
  SiteId site_;
  std::vector<int> writer_;
  std::vector<int> reader_count_;
  std::vector<std::vector<char>> reading_;
};

/// Routes lock operations to per-site managers, as a distributed lock
/// manager would.
class DistributedLockManager {
 public:
  DistributedLockManager(const DistributedDatabase* db, int num_txns) {
    db_ = db;
    for (SiteId s = 0; s < db->NumSites(); ++s) {
      sites_.emplace_back(db, s, num_txns);
    }
  }

  Status Acquire(EntityId e, int txn, bool shared = false) {
    return sites_[db_->SiteOf(e)].Acquire(e, txn, shared);
  }
  Status Release(EntityId e, int txn, bool shared = false) {
    return sites_[db_->SiteOf(e)].Release(e, txn, shared);
  }
  bool MayAcquire(EntityId e, int txn, bool shared) const {
    return sites_[db_->SiteOf(e)].MayAcquire(e, txn, shared);
  }
  int WriterOf(EntityId e) const { return sites_[db_->SiteOf(e)].WriterOf(e); }
  bool IsReading(EntityId e, int txn) const {
    return sites_[db_->SiteOf(e)].IsReading(e, txn);
  }
  bool MayUpdate(EntityId e, int txn) const {
    return sites_[db_->SiteOf(e)].MayUpdate(e, txn);
  }
  const SiteLockManager& site(SiteId s) const { return sites_[s]; }

 private:
  const DistributedDatabase* db_;
  std::vector<SiteLockManager> sites_;
};

}  // namespace dislock

#endif  // DISLOCK_SIM_LOCK_MANAGER_H_
