#include "sim/workload.h"

#include <algorithm>

#include "core/policy.h"
#include "txn/linear_extension.h"
#include "util/string_util.h"

namespace dislock {

namespace {

std::shared_ptr<DistributedDatabase> MakeDb(int num_sites, int num_entities) {
  auto db = std::make_shared<DistributedDatabase>(num_sites);
  for (int e = 0; e < num_entities; ++e) {
    db->MustAddEntity(StrCat("e", e), e % num_sites);
  }
  return db;
}

/// Appends, for one site, a random legal interleaving of the lock/update/
/// unlock steps of `entities`, chained into the site-local total order.
/// Returns the site-chain in order.
std::vector<StepId> EmitSiteSection(Transaction* txn,
                                    const std::vector<EntityId>& entities,
                                    double update_probability,
                                    double shared_probability, Rng* rng) {
  // Token = (entity index, phase 0=lock 1=unlock). Shuffle, then repair any
  // unlock-before-lock by swapping the pair's positions.
  struct Token {
    int idx;
    int phase;
  };
  std::vector<Token> tokens;
  for (int i = 0; i < static_cast<int>(entities.size()); ++i) {
    tokens.push_back({i, 0});
    tokens.push_back({i, 1});
  }
  rng->Shuffle(&tokens);
  std::vector<int> first_pos(entities.size(), -1);
  for (int p = 0; p < static_cast<int>(tokens.size()); ++p) {
    Token& t = tokens[p];
    if (first_pos[t.idx] == -1) {
      first_pos[t.idx] = p;
      t.phase = 0;  // first occurrence is the lock
    } else {
      t.phase = 1;
    }
  }

  // Decide per-entity sharedness up front so lock and unlock agree.
  std::vector<char> shared(entities.size(), 0);
  for (size_t i = 0; i < entities.size(); ++i) {
    shared[i] = rng->Bernoulli(shared_probability) ? 1 : 0;
  }

  std::vector<StepId> chain;
  StepId prev = kInvalidStep;
  auto emit = [&](StepKind kind, EntityId e, bool is_shared) {
    StepId s = txn->AddStep(kind, e, is_shared);
    if (prev != kInvalidStep) txn->AddPrecedence(prev, s);
    prev = s;
    chain.push_back(s);
  };
  for (const Token& t : tokens) {
    EntityId e = entities[t.idx];
    if (t.phase == 0) {
      emit(StepKind::kLock, e, shared[t.idx]);
      if (!shared[t.idx] && rng->Bernoulli(update_probability)) {
        emit(StepKind::kUpdate, e, false);
      }
    } else {
      emit(StepKind::kUnlock, e, shared[t.idx]);
    }
  }
  return chain;
}

}  // namespace

Workload MakeRandomWorkload(const WorkloadParams& params, Rng* rng) {
  Workload w;
  w.db = MakeDb(params.num_sites, params.num_entities);
  w.system = std::make_shared<TransactionSystem>(w.db.get());

  for (int t = 0; t < params.num_transactions; ++t) {
    Transaction txn(w.db.get(), StrCat("T", t + 1));
    // Choose locked entities; force at least one.
    std::vector<EntityId> locked;
    for (EntityId e = 0; e < w.db->NumEntities(); ++e) {
      if (rng->Bernoulli(params.lock_probability)) locked.push_back(e);
    }
    if (locked.empty()) {
      locked.push_back(static_cast<EntityId>(
          rng->Index(static_cast<size_t>(w.db->NumEntities()))));
    }
    // Per-site random section layout.
    for (SiteId site = 0; site < w.db->NumSites(); ++site) {
      std::vector<EntityId> here;
      for (EntityId e : locked) {
        if (w.db->SiteOf(e) == site) here.push_back(e);
      }
      if (!here.empty()) {
        EmitSiteSection(&txn, here, params.update_probability,
                        params.shared_probability, rng);
      }
    }
    // Random cross-site arcs, sampled consistently with one linear
    // extension so the order stays acyclic.
    if (txn.NumSteps() > 1) {
      for (int a = 0; a < params.cross_site_arcs; ++a) {
        std::vector<StepId> ext = RandomLinearExtension(txn, rng);
        size_t i = rng->Index(ext.size());
        size_t j = rng->Index(ext.size());
        if (i == j) continue;
        if (i > j) std::swap(i, j);
        if (txn.SiteOfStep(ext[i]) == txn.SiteOfStep(ext[j])) continue;
        txn.AddPrecedence(ext[i], ext[j]);
      }
    }
    w.system->Add(std::move(txn));
  }
  return w;
}

Workload MakeRandomTotalOrderPair(int num_entities, Rng* rng) {
  Workload w;
  w.db = MakeDb(1, num_entities);
  w.system = std::make_shared<TransactionSystem>(w.db.get());
  for (int t = 0; t < 2; ++t) {
    Transaction txn(w.db.get(), StrCat("t", t + 1));
    // Three tokens per entity (lock, update, unlock); shuffle positions and
    // assign the kinds in position order within each entity.
    std::vector<EntityId> slots;
    for (EntityId e = 0; e < num_entities; ++e) {
      slots.push_back(e);
      slots.push_back(e);
      slots.push_back(e);
    }
    rng->Shuffle(&slots);
    std::vector<int> seen(num_entities, 0);
    StepId prev = kInvalidStep;
    for (EntityId e : slots) {
      StepKind kind = seen[e] == 0   ? StepKind::kLock
                      : seen[e] == 1 ? StepKind::kUpdate
                                     : StepKind::kUnlock;
      ++seen[e];
      StepId s = txn.AddStep(kind, e);
      if (prev != kInvalidStep) txn.AddPrecedence(prev, s);
      prev = s;
    }
    w.system->Add(std::move(txn));
  }
  return w;
}

Workload MakeTwoSiteScalingPair(int num_entities, bool safe, Rng* rng) {
  (void)rng;
  Workload w;
  w.db = MakeDb(2, num_entities);
  w.system = std::make_shared<TransactionSystem>(w.db.get());
  std::vector<EntityId> all;
  for (EntityId e = 0; e < num_entities; ++e) all.push_back(e);

  // T1: strongly two-phase (every lock precedes every unlock), so the
  // T1-half of every Definition 1 arc condition holds.
  w.system->Add(MakeTwoPhaseTransaction(w.db.get(), "T1", all));

  if (safe) {
    // T2 also strongly two-phase: D(T1,T2) is the complete digraph on
    // num_entities nodes — strongly connected, and the largest possible arc
    // set (the SCC test's worst case).
    w.system->Add(MakeTwoPhaseTransaction(w.db.get(), "T2", all));
  } else {
    // T2 takes its sections sequentially: Lx0 Ux0 Lx1 Ux1 ... so
    // Lxj <2 Uxi iff j <= i and D only has downward arcs — not strongly
    // connected (dominator {x0}).
    Transaction t2(w.db.get(), "T2");
    StepId prev = kInvalidStep;
    for (EntityId e : all) {
      StepId l = t2.AddStep(StepKind::kLock, e);
      StepId u = t2.AddStep(StepKind::kUnlock, e);
      if (prev != kInvalidStep) t2.AddPrecedence(prev, l);
      t2.AddPrecedence(l, u);
      prev = u;
    }
    w.system->Add(std::move(t2));
  }
  return w;
}

}  // namespace dislock
