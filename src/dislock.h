#ifndef DISLOCK_DISLOCK_H_
#define DISLOCK_DISLOCK_H_

/// \mainpage dislock — Is Distributed Locking Harder?
///
/// Umbrella header for the dislock library, a full implementation of
/// Kanellakis & Papadimitriou, "Is Distributed Locking Harder?" (PODS 1982
/// / JCSS 28, 1984).
///
/// Layering (each header is independently includable):
///   * model        — txn/database.h, txn/transaction.h, txn/builder.h,
///                    txn/validate.h, txn/schedule.h, txn/system.h,
///                    txn/linear_extension.h, txn/text_format.h
///   * geometry     — geometry/picture.h, geometry/curve.h,
///                    geometry/deadlock_geometry.h
///   * analysis     — analysis/diagnostic.h, analysis/pass.h,
///                    analysis/passes.h, analysis/emit.h,
///                    analysis/analyzer.h (the pass-manager static
///                    analyzer over the results layer)
///   * catalog      — txn/catalog.h (mutable versioned catalog with stable
///                    TxnIds), core/incremental/engine.h (delta
///                    re-analysis), core/incremental/session.h (the
///                    `dislock session` REPL)
///   * results      — core/conflict_graph.h (Definition 1),
///                    core/safety.h (Theorems 1-2 entry points),
///                    core/decision/ (the tiered DecisionPipeline:
///                    procedure.h, pipeline.h, config.h, context.h,
///                    method.h, stats.h), core/closure.h (Lemmas 2-3,
///                    Definition 3), core/certificate.h (the Theorem 2
///                    construction), core/brute_force.h (Lemma 1 oracles),
///                    core/multi.h (Proposition 2), core/deadlock.h,
///                    core/policy.h, core/protocols.h, core/paper.h
///   * reduction    — sat/cnf.h, sat/solver.h, sat/normalize.h,
///                    sat/reduction.h (Theorem 3)
///   * simulation   — sim/lock_manager.h, sim/scheduler.h, sim/executor.h,
///                    sim/workload.h
///   * observability— obs/trace.h (RAII spans + Chrome trace_event
///                    export), obs/metrics.h (typed counter/gauge
///                    registry), obs/stats_sink.h (the one stats
///                    interface), obs/observability.h (tool-side bundle),
///                    core/wire_keys.h (wire strings), core/stats_export.h
///                    (report → sink), util/flags.h (shared tool flags)

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "analysis/emit.h"
#include "analysis/pass.h"
#include "analysis/passes.h"
#include "core/brute_force.h"
#include "core/certificate.h"
#include "core/closure.h"
#include "core/conflict_graph.h"
#include "core/deadlock.h"
#include "core/decision/config.h"
#include "core/decision/context.h"
#include "core/decision/method.h"
#include "core/decision/pipeline.h"
#include "core/decision/procedure.h"
#include "core/decision/stats.h"
#include "core/incremental/delta.h"
#include "core/incremental/engine.h"
#include "core/incremental/session.h"
#include "core/multi.h"
#include "core/paper.h"
#include "core/policy.h"
#include "core/protocols.h"
#include "core/report.h"
#include "core/safety.h"
#include "cache/verdict_cache.h"
#include "cache/verdict_store.h"
#include "core/stats_export.h"
#include "core/wire_keys.h"
#include "geometry/curve.h"
#include "geometry/deadlock_geometry.h"
#include "geometry/picture.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "obs/stats_sink.h"
#include "obs/trace.h"
#include "sat/cnf.h"
#include "sat/normalize.h"
#include "sat/reduction.h"
#include "sat/solver.h"
#include "sim/executor.h"
#include "sim/lock_manager.h"
#include "sim/scheduler.h"
#include "sim/workload.h"
#include "txn/builder.h"
#include "txn/catalog.h"
#include "txn/linear_extension.h"
#include "txn/schedule.h"
#include "txn/system.h"
#include "txn/text_format.h"
#include "txn/validate.h"
#include "util/flags.h"

#endif  // DISLOCK_DISLOCK_H_
