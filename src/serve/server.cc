#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.h"

namespace dislock {
namespace serve {

namespace {

// Transport-level line cap: a peer that never sends '\n' must not grow the
// buffer without bound. Larger than any session line limit so the session
// layer's structured oversized-line error stays the one clients see.
constexpr size_t kMaxBufferedBytes = 8u << 20;

int OpenListener(const std::string& host, int port, std::string* error) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "invalid listen address '" + host + "'";
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 128) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return -1;
  }
  return ntohs(addr.sin_port);
}

int Connect(const std::string& host, int port, std::string* error) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "invalid address '" + host + "'";
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("connect ") + host + ":" + std::to_string(port) +
             ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

// One TCP connection: a reader thread splitting bytes into lines for
// Submit, plus the fd shared with the sequencer (responses) — writes are
// serialized by a per-connection mutex because the session layer's
// assembler errors and the sequencer's responses both target it.
struct Connection {
  int fd = -1;
  int64_t client = -1;
  std::mutex write_mu;
  std::atomic<bool> peer_gone{false};
  std::thread reader;
};

void ReaderLoop(Connection* conn, SafetyService* service) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error: flush what we have and close
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      size_t end = nl;
      if (end > start && buffer[end - 1] == '\r') --end;  // tolerate CRLF
      service->Submit(conn->client, buffer.substr(start, end - start));
      start = nl + 1;
    }
    buffer.erase(0, start);
    if (buffer.size() > kMaxBufferedBytes) {
      // A '\n'-less flood: feed it as one oversized line (the session layer
      // renders the structured error) and stop reading this peer.
      service->Submit(conn->client, buffer);
      break;
    }
  }
  if (!buffer.empty() && buffer.size() <= kMaxBufferedBytes) {
    service->Submit(conn->client, buffer);  // final unterminated line
  }
  service->CloseClient(conn->client);
}

}  // namespace

int RunServer(SafetyService* service, const ServerOptions& options,
              std::ostream& log) {
  std::string error;
  int listen_fd = OpenListener(options.host, options.port, &error);
  if (listen_fd < 0) {
    log << "dislock_serve: " << error << "\n" << std::flush;
    return 1;
  }
  int port = BoundPort(listen_fd);
  log << "dislock_serve: listening on " << options.host << ":" << port << "\n"
      << std::flush;

  std::vector<std::unique_ptr<Connection>> connections;
  while (!service->ShutdownRequested()) {
    pollfd pfd{listen_fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;  // timeout: re-check ShutdownRequested
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Connection>();
    Connection* c = conn.get();
    c->fd = fd;
    c->client = service->OpenClient(
        [c](const std::string& response) {
          std::lock_guard<std::mutex> lock(c->write_mu);
          if (!c->peer_gone.load() &&
              !WriteAll(c->fd, response.data(), response.size())) {
            c->peer_gone.store(true);
          }
        },
        [c] {
          // Service is done with this client: half-close so a trace client
          // blocked on recv sees EOF; the reader joins at server teardown.
          c->peer_gone.store(true);
          ::shutdown(c->fd, SHUT_RDWR);
        });
    c->reader = std::thread(ReaderLoop, c, service);
    connections.push_back(std::move(conn));
  }
  ::close(listen_fd);

  // Unblock any readers still in recv(), join them, then stop the service.
  for (auto& conn : connections) ::shutdown(conn->fd, SHUT_RDWR);
  for (auto& conn : connections) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  service->Shutdown();
  for (auto& conn : connections) ::close(conn->fd);
  return 0;
}

int RunClientTrace(const std::string& host, int port, std::istream& script,
                   std::ostream& out, std::ostream& log) {
  std::string error;
  int fd = Connect(host, port, &error);
  if (fd < 0) {
    log << "dislock_serve: " << error << "\n" << std::flush;
    return 1;
  }
  std::string line;
  bool ok = true;
  while (ok && std::getline(script, line)) {
    line.push_back('\n');
    ok = WriteAll(fd, line.data(), line.size());
  }
  ::shutdown(fd, SHUT_WR);  // EOF to the server; keep reading responses
  char chunk[4096];
  for (;;) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    out.write(chunk, n);
  }
  out.flush();
  ::close(fd);
  if (!ok) {
    log << "dislock_serve: send failed: " << std::strerror(errno) << "\n"
        << std::flush;
    return 1;
  }
  return 0;
}

}  // namespace serve
}  // namespace dislock
