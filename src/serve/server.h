#ifndef DISLOCK_SERVE_SERVER_H_
#define DISLOCK_SERVE_SERVER_H_

#include <iosfwd>
#include <string>

namespace dislock {
namespace serve {

class SafetyService;

/// TCP transport configuration for RunServer. The server binds
/// host:port, announces the bound address on `log` as
///   dislock_serve: listening on HOST:PORT
/// (PORT is the kernel-assigned port when `port` is 0), and serves until
/// a client issues `shutdown`.
struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 4400;  // 0 = ephemeral; the announce line carries the real one
};

/// Runs the accept loop for `service` on a listening TCP socket. One
/// reader thread per connection feeds lines into the service; responses
/// are written back from the sequencer thread via the client's Respond
/// callback. Returns 0 on a clean `shutdown`, 1 on a socket-level setup
/// failure (bind/listen), with the failure described on `log`.
int RunServer(SafetyService* service, const ServerOptions& options,
              std::ostream& log);

/// Scripted client: connects to host:port, sends every line of `script`,
/// half-closes the write side, and copies all responses to `out` until
/// the server closes the connection. This is the CI smoke / golden-diff
/// client. Returns 0 on success, 1 on connect/IO failure (described on
/// `log`).
int RunClientTrace(const std::string& host, int port, std::istream& script,
                   std::ostream& out, std::ostream& log);

}  // namespace serve
}  // namespace dislock

#endif  // DISLOCK_SERVE_SERVER_H_
