#include "serve/service.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "core/incremental/session_core.h"
#include "core/wire_keys.h"
#include "obs/stats_sink.h"
#include "util/string_util.h"

namespace dislock {
namespace serve {

namespace {

std::string ShutdownResponse(bool json) {
  if (json) {
    return StrCat("{\"", wire::kSchemaVersionKey,
                  "\": ", std::to_string(wire::kSchemaVersion),
                  ", \"cmd\": \"shutdown\", \"ok\": true}\n");
  }
  return "shutting down\n";
}

}  // namespace

class SafetyService::Impl {
 public:
  explicit Impl(const ServiceOptions& options)
      : options_(MakeJsonOptions(options)), core_(options_.session) {
    sequencer_ = std::thread([this] { SequencerLoop(); });
  }

  ~Impl() { Shutdown(); }

  int64_t OpenClient(Respond respond, OnClose on_close) {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t id = next_client_++;
    Client client;
    client.assembler = std::make_unique<CommandAssembler>(&core_);
    client.respond = std::move(respond);
    client.on_close = std::move(on_close);
    clients_.emplace(id, std::move(client));
    ++clients_opened_;
    return id;
  }

  void Submit(int64_t client_id, const std::string& line) {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    auto it = clients_.find(client_id);
    if (it == clients_.end() || it->second.closing) return;
    // Raw lines travel to the sequencer and are assembled there, strictly
    // after every earlier-arriving command has executed: a block verb like
    // `add` consults session state (is a system loaded?), so assembling on
    // the caller thread would race with a `load` still in the queue.
    Enqueue({Task::kLine, client_id, line});
  }

  void CloseClient(int64_t client_id) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = clients_.find(client_id);
    if (it == clients_.end() || it->second.closing) return;
    it->second.closing = true;
    Enqueue({Task::kClose, client_id, {}});
  }

  void Drain() {
    std::unique_lock<std::mutex> lock(mu_);
    drained_.wait(lock, [this] { return queue_.empty() && !processing_; });
  }

  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        // Second caller: the sequencer may still be draining; fall through
        // to the join guard below.
      }
      stopping_ = true;
      ready_.notify_all();
    }
    if (sequencer_.joinable()) sequencer_.join();
  }

  bool ShutdownRequested() const {
    std::lock_guard<std::mutex> lock(mu_);
    return shutdown_requested_;
  }

  void WaitForShutdownRequest() {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
  }

  int64_t commands() const { return core_.commands(); }
  int errors() const { return core_.errors(); }
  int64_t responses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return responses_;
  }
  int64_t clients_opened() const {
    std::lock_guard<std::mutex> lock(mu_);
    return clients_opened_;
  }
  int64_t queue_peak() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_peak_;
  }

  void ExportStats(obs::StatsSink* sink) {
    if (sink == nullptr) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      sink->AddCounter(wire::kMetricServeResponses, responses_);
      sink->AddCounter(wire::kMetricServeClients, clients_opened_);
      sink->SetGauge(wire::kMetricServeQueuePeak,
                     static_cast<double>(queue_peak_));
      sink->SetGauge(wire::kMetricServeQueueDepth,
                     static_cast<double>(queue_.size()));
    }
    sink->AddCounter(wire::kMetricServeCommands, core_.commands());
    sink->AddCounter(wire::kMetricServeErrors, core_.errors());
    core_.ExportBackendStats(sink);
  }

 private:
  struct Task {
    enum Kind { kLine, kClose };
    Kind kind;
    int64_t client;
    std::string line;
  };
  struct Client {
    std::unique_ptr<CommandAssembler> assembler;
    Respond respond;
    OnClose on_close;
    bool closing = false;
  };

  static ServiceOptions MakeJsonOptions(ServiceOptions options) {
    // The serve wire protocol is the JSON-lines session protocol; a text
    // serve would have no framing for multi-line responses.
    options.session.json = true;
    return options;
  }

  using ClientIt = std::unordered_map<int64_t, Client>::iterator;

  // Sequencer-only. Deliver a response outside the service lock; the
  // iterator stays valid because only this thread erases clients.
  void Deliver(std::unique_lock<std::mutex>& lock, ClientIt it,
               const std::string& response) {
    Respond respond = it->second.respond;
    lock.unlock();
    if (respond) respond(response);
    lock.lock();
    ++responses_;
  }

  // Sequencer-only. Assemble one raw line and run whatever completes.
  // Assembly and execution happen back-to-back on this thread, so a block
  // verb always sees the session state left by every earlier command.
  void ProcessLine(std::unique_lock<std::mutex>& lock, ClientIt it,
                   const std::string& line) {
    CommandAssembler::Step step = it->second.assembler->Consume(line);
    if (step.response.has_value()) Deliver(lock, it, *step.response);
    if (step.quit) {
      CloseNow(lock, it);
      return;
    }
    if (!step.command.has_value()) return;
    if (step.command->verb == "shutdown") {
      Deliver(lock, it, ShutdownResponse(true));
      shutdown_requested_ = true;
      shutdown_cv_.notify_all();
      return;
    }
    SessionCommand command = *std::move(step.command);
    Respond respond = it->second.respond;
    lock.unlock();
    // Execute outside the service lock: Submit/OpenClient stay responsive
    // while a check runs. Commands still execute strictly in arrival order
    // — only this thread pops the queue.
    SessionCore::Outcome outcome = core_.Execute(command);
    if (respond && !outcome.response.empty()) respond(outcome.response);
    lock.lock();
    ++responses_;
  }

  // Sequencer-only. Flush an unterminated block as its structured error,
  // then close the client.
  void FlushAndClose(std::unique_lock<std::mutex>& lock, ClientIt it) {
    std::optional<std::string> unfinished = it->second.assembler->Finish();
    if (unfinished.has_value()) Deliver(lock, it, *unfinished);
    CloseNow(lock, it);
  }

  void CloseNow(std::unique_lock<std::mutex>& lock, ClientIt it) {
    it->second.closing = true;
    OnClose on_close = std::move(it->second.on_close);
    clients_.erase(it);
    lock.unlock();
    if (on_close) on_close();
    lock.lock();
  }

  void Enqueue(Task task) {
    queue_.push_back(std::move(task));
    queue_peak_ = std::max(queue_peak_, static_cast<int64_t>(queue_.size()));
    ready_.notify_one();
  }

  void SequencerLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ with a drained queue: exit after waking Drain waiters.
        drained_.notify_all();
        return;
      }
      Task task = std::move(queue_.front());
      queue_.pop_front();
      processing_ = true;
      auto it = clients_.find(task.client);
      if (it != clients_.end()) {
        switch (task.kind) {
          case Task::kLine:
            ProcessLine(lock, it, task.line);
            break;
          case Task::kClose:
            FlushAndClose(lock, it);
            break;
        }
      }
      processing_ = false;
      if (queue_.empty()) drained_.notify_all();
    }
  }

  const ServiceOptions options_;
  SessionCore core_;

  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::condition_variable drained_;
  std::condition_variable shutdown_cv_;
  std::deque<Task> queue_;
  std::unordered_map<int64_t, Client> clients_;
  int64_t next_client_ = 0;
  int64_t clients_opened_ = 0;
  int64_t responses_ = 0;
  int64_t queue_peak_ = 0;
  bool processing_ = false;
  bool stopping_ = false;
  bool shutdown_requested_ = false;
  std::thread sequencer_;
};

SafetyService::SafetyService(const ServiceOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}

SafetyService::~SafetyService() = default;

int64_t SafetyService::OpenClient(Respond respond, OnClose on_close) {
  return impl_->OpenClient(std::move(respond), std::move(on_close));
}

void SafetyService::Submit(int64_t client, const std::string& line) {
  impl_->Submit(client, line);
}

void SafetyService::CloseClient(int64_t client) {
  impl_->CloseClient(client);
}

void SafetyService::Drain() { impl_->Drain(); }

void SafetyService::Shutdown() { impl_->Shutdown(); }

bool SafetyService::ShutdownRequested() const {
  return impl_->ShutdownRequested();
}

void SafetyService::WaitForShutdownRequest() {
  impl_->WaitForShutdownRequest();
}

int64_t SafetyService::commands() const { return impl_->commands(); }
int64_t SafetyService::responses() const { return impl_->responses(); }
int SafetyService::errors() const { return impl_->errors(); }
int64_t SafetyService::clients_opened() const {
  return impl_->clients_opened();
}
int64_t SafetyService::queue_peak() const { return impl_->queue_peak(); }

void SafetyService::ExportStats(obs::StatsSink* sink) {
  impl_->ExportStats(sink);
}

}  // namespace serve
}  // namespace dislock
