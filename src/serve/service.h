#ifndef DISLOCK_SERVE_SERVICE_H_
#define DISLOCK_SERVE_SERVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/incremental/session.h"

namespace dislock {

namespace obs {
class StatsSink;
}  // namespace obs

namespace serve {

/// Configuration of one SafetyService. The wire protocol is the session
/// JSON-lines protocol verbatim (session.json is forced on), so any session
/// option — shards, engine config, load_root, max_line_bytes — applies.
struct ServiceOptions {
  SessionOptions session;
};

/// The transport-independent heart of `dislock_serve`: multiplexes any
/// number of concurrent clients onto one shared SessionCore.
///
/// Concurrency model — one global arrival-order queue, one sequencer.
/// Connection threads call Submit(), which runs that client's
/// CommandAssembler (block collection, JSON envelope decoding, structural
/// errors) and enqueues the resulting work; a single sequencer thread
/// executes commands strictly in arrival order and delivers every response
/// through the owning client's callback. Consequences:
///   * per-client command order is submission order (a client's lines are
///     fed by its one reader thread);
///   * responses to one client never interleave or reorder;
///   * a trace submitted in a fixed global order yields byte-identical
///     responses at any shard/thread count — the determinism the serve
///     tests pin. Check() still fans out internally across shards, so
///     sequencing commands does not serialize the actual analysis work.
///
/// Shutdown protocol: the `shutdown` verb (a serve-level extension; plain
/// sessions reject it) answers ok, then flips ShutdownRequested() — the
/// accept loop watches that flag, stops accepting, and calls Shutdown(),
/// which drains the queue and joins the sequencer. `quit` closes only the
/// issuing client's connection (graceful per-client close).
class SafetyService {
 public:
  /// Delivers one rendered response (text written verbatim to the client).
  using Respond = std::function<void(const std::string&)>;
  /// Client teardown signal: the service is done with this client (quit
  /// processed, or CloseClient drained); the transport should close.
  using OnClose = std::function<void()>;

  explicit SafetyService(const ServiceOptions& options);
  ~SafetyService();

  SafetyService(const SafetyService&) = delete;
  SafetyService& operator=(const SafetyService&) = delete;

  /// Registers a client; callbacks fire on the sequencer thread only.
  int64_t OpenClient(Respond respond, OnClose on_close = nullptr);

  /// Feeds one raw input line from `client` (no trailing newline).
  /// Thread-safe across clients; a single client's lines must come from
  /// one thread (its reader). Lines submitted after Shutdown() or to a
  /// closed client are dropped.
  void Submit(int64_t client, const std::string& line);

  /// End of the client's input (EOF): flushes the structured
  /// unterminated-block error if a txn block was open, then signals
  /// OnClose once everything queued for this client has drained.
  void CloseClient(int64_t client);

  /// Blocks until the queue is empty and the sequencer is idle.
  void Drain();

  /// Stops intake, drains, and joins the sequencer. Idempotent; the
  /// destructor calls it.
  void Shutdown();

  /// True once a client has issued the `shutdown` command.
  bool ShutdownRequested() const;
  /// Blocks until ShutdownRequested() (the server's accept loop uses a
  /// polling variant; this one serves in-process embeddings and tests).
  void WaitForShutdownRequest();

  // Service-level counters (monotone, safe to read any time).
  int64_t commands() const;   ///< commands executed (SessionCore counter)
  int64_t responses() const;  ///< response payloads delivered
  int errors() const;         ///< failed commands (SessionCore counter)
  int64_t clients_opened() const;
  int64_t queue_peak() const;

  /// Pours serve.* counters, the session counters, and the per-shard
  /// breakdown (sharded backend only) into `sink`.
  void ExportStats(obs::StatsSink* sink);

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace serve
}  // namespace dislock

#endif  // DISLOCK_SERVE_SERVICE_H_
