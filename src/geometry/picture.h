#ifndef DISLOCK_GEOMETRY_PICTURE_H_
#define DISLOCK_GEOMETRY_PICTURE_H_

#include <string>
#include <vector>

#include "txn/schedule.h"
#include "txn/transaction.h"
#include "util/status.h"

namespace dislock {

/// The forbidden rectangle of an entity x locked by both transactions of a
/// totally ordered pair {t1, t2} (Section 3, Fig. 2). Coordinates are
/// 1-based step positions: the x-axis (resp. y-axis) interval runs from
/// t1's (resp. t2's) `lock x` position to its `unlock x` position.
struct Rect {
  EntityId entity = kInvalidEntity;
  int lx1 = 0;  ///< position of Lx in t1
  int ux1 = 0;  ///< position of Ux in t1
  int lx2 = 0;  ///< position of Lx in t2
  int ux2 = 0;  ///< position of Ux in t2
};

/// The geometric picture of a pair of totally ordered transactions: the
/// coordinated plane with one forbidden rectangle per commonly locked
/// entity. Built by PairPicture::Make from two *total-order* transactions.
class PairPicture {
 public:
  /// Builds the picture. Both transactions must be total orders (their
  /// precedence DAGs must admit exactly one linear extension); returns
  /// InvalidArgument otherwise.
  static Result<PairPicture> Make(const Transaction& t1,
                                  const Transaction& t2);

  int num_steps1() const { return m1_; }
  int num_steps2() const { return m2_; }
  const std::vector<Rect>& rects() const { return rects_; }

  /// The unique linear extension of t1 / t2 (step ids in execution order).
  const std::vector<StepId>& order1() const { return order1_; }
  const std::vector<StepId>& order2() const { return order2_; }

  /// 1-based position of step `s` of t1 (resp. t2).
  int Pos1(StepId s) const { return pos1_[s]; }
  int Pos2(StepId s) const { return pos2_[s]; }

  /// ASCII rendering of the plane with rectangle outlines, in the style of
  /// the paper's Fig. 2. If `curve` is non-null its staircase is drawn too.
  std::string Render(const TransactionSystem& system,
                     const std::vector<int>* curve = nullptr) const;

 private:
  int m1_ = 0;
  int m2_ = 0;
  std::vector<Rect> rects_;
  std::vector<StepId> order1_, order2_;
  std::vector<int> pos1_, pos2_;
};

/// Extracts the unique linear extension of a total-order transaction, or
/// InvalidArgument if the transaction is not totally ordered.
Result<std::vector<StepId>> TotalOrderOf(const Transaction& txn);

}  // namespace dislock

#endif  // DISLOCK_GEOMETRY_PICTURE_H_
