#include "geometry/deadlock_geometry.h"

#include <algorithm>
#include <deque>
#include <vector>

namespace dislock {

std::optional<GeometricDeadlock> FindGeometricDeadlock(
    const PairPicture& pic) {
  const int m1 = pic.num_steps1();
  const int m2 = pic.num_steps2();
  const int width = m1 + 1;
  auto id = [width](int i, int j) { return j * width + i; };

  // Forbidden states: both transactions hold some entity.
  std::vector<char> blocked((m1 + 1) * (m2 + 1), 0);
  for (const Rect& r : pic.rects()) {
    for (int i = r.lx1; i <= r.ux1 - 1; ++i) {
      for (int j = r.lx2; j <= r.ux2 - 1; ++j) blocked[id(i, j)] = 1;
    }
  }

  std::vector<char> parent(blocked.size(), 0);  // 1 = from left, 2 = below
  std::vector<char> seen(blocked.size(), 0);
  std::deque<int> queue{id(0, 0)};
  seen[id(0, 0)] = 1;
  while (!queue.empty()) {
    int cur = queue.front();
    queue.pop_front();
    int i = cur % width;
    int j = cur / width;
    bool right_ok = i + 1 <= m1 && !blocked[id(i + 1, j)];
    bool up_ok = j + 1 <= m2 && !blocked[id(i, j + 1)];
    if (!right_ok && !up_ok && !(i == m1 && j == m2)) {
      // Dead state: reconstruct the prefix.
      GeometricDeadlock dead;
      dead.progress1 = i;
      dead.progress2 = j;
      std::vector<char> moves;
      int ci = i;
      int cj = j;
      while (ci != 0 || cj != 0) {
        char mv = parent[id(ci, cj)];
        moves.push_back(mv);
        if (mv == 1) {
          --ci;
        } else {
          --cj;
        }
      }
      std::reverse(moves.begin(), moves.end());
      int pi = 0;
      int pj = 0;
      for (char mv : moves) {
        if (mv == 1) {
          dead.prefix.Append(0, pic.order1()[pi++]);
        } else {
          dead.prefix.Append(1, pic.order2()[pj++]);
        }
      }
      return dead;
    }
    if (right_ok && !seen[id(i + 1, j)]) {
      seen[id(i + 1, j)] = 1;
      parent[id(i + 1, j)] = 1;
      queue.push_back(id(i + 1, j));
    }
    if (up_ok && !seen[id(i, j + 1)]) {
      seen[id(i, j + 1)] = 1;
      parent[id(i, j + 1)] = 2;
      queue.push_back(id(i, j + 1));
    }
  }
  return std::nullopt;
}

}  // namespace dislock
