#ifndef DISLOCK_GEOMETRY_CURVE_H_
#define DISLOCK_GEOMETRY_CURVE_H_

#include <optional>
#include <vector>

#include "geometry/picture.h"
#include "txn/schedule.h"
#include "util/status.h"

namespace dislock {

/// A monotone curve through the geometric picture, represented by its
/// crossing heights: heights[c] (c in [0, m1]) is the number of t2 steps the
/// schedule executes before the (c+1)-th step of t1. Nondecreasing; any t2
/// steps beyond heights[m1] run after t1 finishes.
using CurveHeights = std::vector<int>;

/// Which side of a forbidden rectangle a schedule's curve passes.
enum class RectSide {
  kAbove,    ///< t2's lock section on the entity ran before t1's
  kBelow,    ///< t1's lock section ran before t2's
  kThrough,  ///< sections interleave — the schedule is illegal
};

/// Finds a monotone curve that passes above every rectangle of an entity in
/// `pass_above` and below every rectangle of an entity in `pass_below`.
/// The two sets must partition the picture's rectangle entities (so the
/// resulting schedule is automatically legal). Returns NotFound when no such
/// curve exists.
///
/// This is the constructive heart of the unsafety certificates: a curve that
/// separates the rectangles of a dominator X from the rest witnesses a
/// non-serializable schedule (Proposition 1).
Result<CurveHeights> FindSeparatingCurve(const PairPicture& pic,
                                         const std::vector<EntityId>& pass_above,
                                         const std::vector<EntityId>& pass_below);

/// Reads a curve off as a schedule of the two-transaction system
/// {txn 0 = t1 (x axis), txn 1 = t2 (y axis)}.
Schedule CurveToSchedule(const PairPicture& pic, const CurveHeights& heights);

/// The curve of a schedule of {t1, t2} (inverse of CurveToSchedule up to the
/// trailing-t2-steps normalization).
CurveHeights ScheduleToCurve(const PairPicture& pic, const Schedule& schedule);

/// For each rectangle of the picture (parallel to pic.rects()), which side
/// the schedule passes.
std::vector<RectSide> ScheduleSides(const PairPicture& pic,
                                    const Schedule& schedule);

/// A pair of rectangles separated by a schedule: the curve passes above
/// `above` and below `below`.
struct SeparationWitness {
  EntityId above = kInvalidEntity;
  EntityId below = kInvalidEntity;
};

/// Proposition 1 check: returns a separated pair if the schedule's curve
/// separates two rectangles (i.e. the schedule is not serializable), nullopt
/// otherwise.
std::optional<SeparationWitness> FindSeparation(const PairPicture& pic,
                                                const Schedule& schedule);

/// A constructive unsafety witness for a totally ordered pair.
struct GeometricWitness {
  SeparationWitness pair;
  Schedule schedule;
};

/// The naive geometric unsafety test for a totally ordered pair: for every
/// ordered pair of rectangles, BFS over the O(m1 * m2) schedule-state grid
/// for a legal monotone path that passes above one and below the other.
/// O(k^2 * n^2) for k commonly locked entities and n total steps — the
/// brute-force baseline that Theorem 1's strong-connectivity test improves
/// on. Returns NotFound when the pair is safe.
Result<GeometricWitness> NaiveGeometricUnsafetyTest(const PairPicture& pic);

}  // namespace dislock

#endif  // DISLOCK_GEOMETRY_CURVE_H_
