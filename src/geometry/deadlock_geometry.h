#ifndef DISLOCK_GEOMETRY_DEADLOCK_GEOMETRY_H_
#define DISLOCK_GEOMETRY_DEADLOCK_GEOMETRY_H_

#include <optional>

#include "geometry/picture.h"
#include "txn/schedule.h"

namespace dislock {

/// Geometric deadlock detection for a totally ordered pair, after [7, 17]
/// where deadlock freedom is studied side by side with safety: a deadlock
/// is a reachable grid state from which both moves are forbidden (the path
/// is trapped in an inward corner of the union of forbidden rectangles).
struct GeometricDeadlock {
  /// Steps of t1 / t2 completed at the dead state.
  int progress1 = 0;
  int progress2 = 0;
  /// A schedule prefix that reaches the dead state.
  Schedule prefix;
};

/// BFS over the O(m1 * m2) grid of schedule states: returns a witness if
/// some reachable non-final state has no legal successor, nullopt if the
/// pair is deadlock-free. Exact for totally ordered pairs; the general
/// partial-order/deadlock machinery lives in core/deadlock.h.
std::optional<GeometricDeadlock> FindGeometricDeadlock(const PairPicture& pic);

}  // namespace dislock

#endif  // DISLOCK_GEOMETRY_DEADLOCK_GEOMETRY_H_
