#include "geometry/picture.h"

#include <algorithm>
#include <sstream>

#include "graph/topological.h"
#include "util/string_util.h"

namespace dislock {

Result<std::vector<StepId>> TotalOrderOf(const Transaction& txn) {
  auto topo = TopologicalSort(txn.order());
  if (!topo.ok()) {
    return Status::InvalidArgument(
        StrCat("transaction ", txn.name(), " is cyclic"));
  }
  const std::vector<NodeId>& order = topo.value();
  // A DAG is a total order iff consecutive topo-order elements are related
  // (i.e., the order has a Hamiltonian path).
  for (size_t i = 1; i < order.size(); ++i) {
    if (!txn.Precedes(order[i - 1], order[i])) {
      return Status::InvalidArgument(
          StrCat("transaction ", txn.name(), " is not totally ordered: ",
                 txn.StepString(order[i - 1]), " and ",
                 txn.StepString(order[i]), " are concurrent"));
    }
  }
  return std::vector<StepId>(order.begin(), order.end());
}

Result<PairPicture> PairPicture::Make(const Transaction& t1,
                                      const Transaction& t2) {
  PairPicture pic;
  DISLOCK_ASSIGN_OR_RETURN(pic.order1_, TotalOrderOf(t1));
  DISLOCK_ASSIGN_OR_RETURN(pic.order2_, TotalOrderOf(t2));
  pic.m1_ = t1.NumSteps();
  pic.m2_ = t2.NumSteps();
  pic.pos1_.assign(pic.m1_, 0);
  pic.pos2_.assign(pic.m2_, 0);
  for (int i = 0; i < pic.m1_; ++i) pic.pos1_[pic.order1_[i]] = i + 1;
  for (int i = 0; i < pic.m2_; ++i) pic.pos2_[pic.order2_[i]] = i + 1;

  for (EntityId e : t1.LockedEntities()) {
    StepId l2 = t2.LockStep(e);
    StepId u2 = t2.UnlockStep(e);
    if (l2 == kInvalidStep || u2 == kInvalidStep) continue;
    // Two shared (read) sections may overlap and never conflict: no
    // forbidden rectangle.
    if (t1.IsSharedSection(e) && t2.IsSharedSection(e)) continue;
    Rect r;
    r.entity = e;
    r.lx1 = pic.pos1_[t1.LockStep(e)];
    r.ux1 = pic.pos1_[t1.UnlockStep(e)];
    r.lx2 = pic.pos2_[l2];
    r.ux2 = pic.pos2_[u2];
    pic.rects_.push_back(r);
  }
  return pic;
}

std::string PairPicture::Render(const TransactionSystem& system,
                                const std::vector<int>* curve) const {
  // Character grid: columns 0..m1 (curve boundaries) interleaved with step
  // columns; rows likewise, rendered top-down (high t2 position first).
  // Cell (c, r) with c in [1, m1], r in [1, m2] marks grid point (c, r);
  // '#' marks points inside some forbidden rectangle.
  std::ostringstream out;
  const Transaction& t1 = system.txn(0);
  const Transaction& t2 = system.txn(1);
  auto inside = [&](int c, int r) {
    for (const Rect& rect : rects_) {
      if (c >= rect.lx1 && c <= rect.ux1 && r >= rect.lx2 && r <= rect.ux2) {
        return true;
      }
    }
    return false;
  };
  size_t label_width = 5;
  for (int r = 1; r <= m2_; ++r) {
    label_width = std::max(label_width,
                           t2.StepString(order2_[r - 1]).size() + 1);
  }
  for (int r = m2_; r >= 1; --r) {
    // Row label: the t2 step at position r.
    std::string label = t2.StepString(order2_[r - 1]);
    out << label;
    for (size_t pad = label.size(); pad < label_width; ++pad) out << ' ';
    out << "|";
    for (int c = 1; c <= m1_; ++c) {
      bool on_curve = false;
      if (curve != nullptr) {
        // Curve crosses column c between heights (*curve)[c-1]..(*curve)[c].
        int lo = (*curve)[c - 1];
        int hi = (*curve)[c];
        on_curve = r > lo && r <= hi;
      }
      out << ' ' << (inside(c, r) ? '#' : (on_curve ? '*' : '.'));
    }
    out << "\n";
  }
  out << std::string(label_width, ' ') << "+";
  for (int c = 1; c <= m1_; ++c) out << "--";
  out << "\n" << std::string(label_width + 1, ' ');
  for (int c = 1; c <= m1_; ++c) {
    std::string label = t1.StepString(order1_[c - 1]);
    out << label.substr(0, 1) << label.substr(1, 1);
    if (label.size() < 2) out << ' ';
  }
  out << "\n";
  return out.str();
}

}  // namespace dislock
