#include "geometry/curve.h"

#include <algorithm>
#include <deque>
#include <set>

#include "util/string_util.h"

namespace dislock {

Result<CurveHeights> FindSeparatingCurve(
    const PairPicture& pic, const std::vector<EntityId>& pass_above,
    const std::vector<EntityId>& pass_below) {
  const int m1 = pic.num_steps1();
  const int m2 = pic.num_steps2();

  // The two sets must partition the rectangle entities.
  std::set<EntityId> above(pass_above.begin(), pass_above.end());
  std::set<EntityId> below(pass_below.begin(), pass_below.end());
  if (above.size() + below.size() != pic.rects().size()) {
    return Status::InvalidArgument(
        "pass_above / pass_below must partition the rectangle entities");
  }
  for (const Rect& r : pic.rects()) {
    bool a = above.count(r.entity) > 0;
    bool b = below.count(r.entity) > 0;
    if (a == b) {
      return Status::InvalidArgument(
          "every rectangle entity must be in exactly one of pass_above / "
          "pass_below");
    }
  }

  // Envelope method. A curve passes above rectangle r iff
  // heights[c] >= r.ux2 for all c >= r.lx1 - 1, and below r iff
  // heights[c] <= r.lx2 - 1 for all c <= r.ux1 - 1. Both constraint families
  // are monotone, so a feasible curve exists iff the running-max lower
  // envelope stays under the running-min upper envelope; the lower envelope
  // itself is then a witness curve.
  std::vector<int> lb(m1 + 1, 0);
  std::vector<int> ub(m1 + 1, m2);
  for (const Rect& r : pic.rects()) {
    if (above.count(r.entity) > 0) {
      lb[r.lx1 - 1] = std::max(lb[r.lx1 - 1], r.ux2);
    } else {
      ub[r.ux1 - 1] = std::min(ub[r.ux1 - 1], r.lx2 - 1);
    }
  }
  for (int c = 1; c <= m1; ++c) lb[c] = std::max(lb[c], lb[c - 1]);
  for (int c = m1 - 1; c >= 0; --c) ub[c] = std::min(ub[c], ub[c + 1]);
  for (int c = 0; c <= m1; ++c) {
    if (lb[c] > ub[c]) {
      return Status::NotFound("no curve separates the given partition");
    }
  }
  return CurveHeights(lb.begin(), lb.end());
}

Schedule CurveToSchedule(const PairPicture& pic, const CurveHeights& heights) {
  DISLOCK_CHECK_EQ(static_cast<int>(heights.size()), pic.num_steps1() + 1);
  Schedule out;
  int j = 0;
  for (int c = 0; c < pic.num_steps1(); ++c) {
    while (j < heights[c] && j < pic.num_steps2()) {
      out.Append(1, pic.order2()[j]);
      ++j;
    }
    out.Append(0, pic.order1()[c]);
  }
  while (j < pic.num_steps2()) {
    out.Append(1, pic.order2()[j]);
    ++j;
  }
  return out;
}

CurveHeights ScheduleToCurve(const PairPicture& pic,
                             const Schedule& schedule) {
  CurveHeights heights(pic.num_steps1() + 1, pic.num_steps2());
  int t1_seen = 0;
  int t2_seen = 0;
  for (const SysStep& ev : schedule.events()) {
    if (ev.txn == 0) {
      DISLOCK_CHECK_LE(t1_seen, pic.num_steps1());
      heights[t1_seen] = t2_seen;
      ++t1_seen;
    } else {
      ++t2_seen;
    }
  }
  return heights;
}

std::vector<RectSide> ScheduleSides(const PairPicture& pic,
                                    const Schedule& schedule) {
  // Schedule positions per (txn, step).
  std::vector<std::vector<int>> pos(2);
  pos[0].assign(pic.num_steps1(), -1);
  pos[1].assign(pic.num_steps2(), -1);
  for (size_t i = 0; i < schedule.size(); ++i) {
    const SysStep& ev = schedule.at(i);
    DISLOCK_CHECK(ev.txn == 0 || ev.txn == 1);
    pos[ev.txn][ev.step] = static_cast<int>(i);
  }
  std::vector<RectSide> sides;
  sides.reserve(pic.rects().size());
  for (const Rect& r : pic.rects()) {
    // Recover the step ids from the picture positions.
    StepId l1 = pic.order1()[r.lx1 - 1];
    StepId u1 = pic.order1()[r.ux1 - 1];
    StepId l2 = pic.order2()[r.lx2 - 1];
    StepId u2 = pic.order2()[r.ux2 - 1];
    if (pos[1][u2] < pos[0][l1]) {
      sides.push_back(RectSide::kAbove);
    } else if (pos[0][u1] < pos[1][l2]) {
      sides.push_back(RectSide::kBelow);
    } else {
      sides.push_back(RectSide::kThrough);
    }
  }
  return sides;
}

std::optional<SeparationWitness> FindSeparation(const PairPicture& pic,
                                                const Schedule& schedule) {
  std::vector<RectSide> sides = ScheduleSides(pic, schedule);
  EntityId above = kInvalidEntity;
  EntityId below = kInvalidEntity;
  for (size_t i = 0; i < sides.size(); ++i) {
    if (sides[i] == RectSide::kAbove) above = pic.rects()[i].entity;
    if (sides[i] == RectSide::kBelow) below = pic.rects()[i].entity;
  }
  if (above != kInvalidEntity && below != kInvalidEntity) {
    return SeparationWitness{above, below};
  }
  return std::nullopt;
}

namespace {

/// BFS over the schedule-state grid for a monotone path (0,0) -> (m1,m2)
/// avoiding `blocked`, writing the path as a schedule. Returns false when no
/// path exists. `blocked` is row-major: blocked[j * (m1+1) + i].
bool GridPathSchedule(const PairPicture& pic, const std::vector<char>& blocked,
                      Schedule* out) {
  const int m1 = pic.num_steps1();
  const int m2 = pic.num_steps2();
  const int width = m1 + 1;
  auto id = [width](int i, int j) { return j * width + i; };
  if (blocked[id(0, 0)] || blocked[id(m1, m2)]) return false;

  // parent move: 0 = none/start, 1 = came from left (t1 step), 2 = from
  // below (t2 step).
  std::vector<char> parent(blocked.size(), 0);
  std::deque<int> queue{id(0, 0)};
  std::vector<char> seen(blocked.size(), 0);
  seen[id(0, 0)] = 1;
  while (!queue.empty()) {
    int cur = queue.front();
    queue.pop_front();
    int i = cur % width;
    int j = cur / width;
    if (i == m1 && j == m2) break;
    if (i + 1 <= m1) {
      int nxt = id(i + 1, j);
      if (!seen[nxt] && !blocked[nxt]) {
        seen[nxt] = 1;
        parent[nxt] = 1;
        queue.push_back(nxt);
      }
    }
    if (j + 1 <= m2) {
      int nxt = id(i, j + 1);
      if (!seen[nxt] && !blocked[nxt]) {
        seen[nxt] = 1;
        parent[nxt] = 2;
        queue.push_back(nxt);
      }
    }
  }
  if (!seen[id(m1, m2)]) return false;

  // Reconstruct moves backwards.
  std::vector<char> moves;
  int i = m1;
  int j = m2;
  while (i != 0 || j != 0) {
    char mv = parent[id(i, j)];
    moves.push_back(mv);
    if (mv == 1) {
      --i;
    } else {
      DISLOCK_CHECK_EQ(mv, 2);
      --j;
    }
  }
  std::reverse(moves.begin(), moves.end());
  i = 0;
  j = 0;
  for (char mv : moves) {
    if (mv == 1) {
      out->Append(0, pic.order1()[i]);
      ++i;
    } else {
      out->Append(1, pic.order2()[j]);
      ++j;
    }
  }
  return true;
}

}  // namespace

Result<GeometricWitness> NaiveGeometricUnsafetyTest(const PairPicture& pic) {
  const int m1 = pic.num_steps1();
  const int m2 = pic.num_steps2();
  const int width = m1 + 1;
  auto id = [width](int i, int j) { return j * width + i; };

  // Base forbidden states: (i, j) where both transactions hold some entity.
  // t1 holds r's entity at state i iff r.lx1 <= i <= r.ux1 - 1.
  std::vector<char> base((m1 + 1) * (m2 + 1), 0);
  for (const Rect& r : pic.rects()) {
    for (int i = r.lx1; i <= r.ux1 - 1; ++i) {
      for (int j = r.lx2; j <= r.ux2 - 1; ++j) base[id(i, j)] = 1;
    }
  }

  for (const Rect& ra : pic.rects()) {
    for (const Rect& rb : pic.rects()) {
      if (ra.entity == rb.entity) continue;
      // Look for a legal path above ra and below rb.
      std::vector<char> blocked = base;
      // Above ra: forbid states where t1 passed La but t2 hasn't done Ua.
      for (int i = ra.lx1; i <= m1; ++i) {
        for (int j = 0; j <= ra.ux2 - 1; ++j) blocked[id(i, j)] = 1;
      }
      // Below rb: forbid states where t2 passed Lb but t1 hasn't done Ub.
      for (int j = rb.lx2; j <= m2; ++j) {
        for (int i = 0; i <= rb.ux1 - 1; ++i) blocked[id(i, j)] = 1;
      }
      GeometricWitness witness;
      witness.pair = {ra.entity, rb.entity};
      if (GridPathSchedule(pic, blocked, &witness.schedule)) {
        return witness;
      }
    }
  }
  return Status::NotFound("no separating schedule: the pair is safe");
}

}  // namespace dislock
