#include "gen/trace.h"

#include <cstdlib>
#include <sstream>
#include <utility>

#include "core/wire_keys.h"
#include "obs/json.h"
#include "txn/text_format.h"
#include "util/string_util.h"

namespace dislock {
namespace gen {

namespace {

size_t SkipWs(const std::string& s, size_t i) {
  while (i < s.size() &&
         (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) {
    ++i;
  }
  return i;
}

/// Decodes a JSON string starting at the opening quote; the line already
/// passed obs::IsValidJson, so only the escapes we never emit are rejected.
Status ParseJsonString(const std::string& s, size_t* i, std::string* out) {
  if (*i >= s.size() || s[*i] != '"') {
    return Status::InvalidArgument("expected a JSON string in trace header");
  }
  ++*i;
  while (*i < s.size() && s[*i] != '"') {
    if (s[*i] != '\\') {
      out->push_back(s[*i]);
      ++*i;
      continue;
    }
    ++*i;
    char e = s[*i];
    ++*i;
    switch (e) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      default:
        return Status::InvalidArgument(
            "unsupported escape in trace header string");
    }
  }
  ++*i;  // closing quote
  return Status::OK();
}

/// Extracts the raw token of a JSON number (no parsing yet: the seed needs
/// uint64 range, everything else double).
std::string ScanNumberToken(const std::string& s, size_t* i) {
  size_t start = *i;
  while (*i < s.size() && s[*i] != ',' && s[*i] != '}' && s[*i] != ']' &&
         s[*i] != ' ' && s[*i] != '\t' && s[*i] != '\n' && s[*i] != '\r') {
    ++*i;
  }
  return s.substr(start, *i - start);
}

Status ParseParamsObject(const std::string& s, size_t* i, ParamMap* params) {
  if (*i >= s.size() || s[*i] != '{') {
    return Status::InvalidArgument("trace header \"params\" must be an object");
  }
  ++*i;
  *i = SkipWs(s, *i);
  if (*i < s.size() && s[*i] == '}') {
    ++*i;
    return Status::OK();
  }
  for (;;) {
    *i = SkipWs(s, *i);
    std::string name;
    DISLOCK_RETURN_NOT_OK(ParseJsonString(s, i, &name));
    *i = SkipWs(s, *i);
    ++*i;  // ':'
    *i = SkipWs(s, *i);
    std::string token = ScanNumberToken(s, i);
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size()) {
      return Status::InvalidArgument(
          StrCat("trace header param \"", name, "\" must be a number"));
    }
    (*params)[name] = value;
    *i = SkipWs(s, *i);
    if (*i < s.size() && s[*i] == ',') {
      ++*i;
      continue;
    }
    ++*i;  // '}'
    return Status::OK();
  }
}

/// Parses the header line into fields. `line` already passed IsValidJson;
/// unknown keys are rejected so a future header extension fails loudly
/// instead of being silently dropped (same policy as the session envelope).
Status ParseHeaderLine(const std::string& line, TraceHeader* header,
                       std::string* format) {
  size_t i = SkipWs(line, 0);
  if (i >= line.size() || line[i] != '{') {
    return Status::InvalidArgument("trace header must be a JSON object");
  }
  ++i;
  i = SkipWs(line, i);
  if (i < line.size() && line[i] == '}') {
    return Status::InvalidArgument("trace header is empty");
  }
  for (;;) {
    i = SkipWs(line, i);
    std::string key;
    DISLOCK_RETURN_NOT_OK(ParseJsonString(line, &i, &key));
    i = SkipWs(line, i);
    ++i;  // ':'
    i = SkipWs(line, i);
    if (key == "format") {
      DISLOCK_RETURN_NOT_OK(ParseJsonString(line, &i, format));
    } else if (key == "family") {
      DISLOCK_RETURN_NOT_OK(ParseJsonString(line, &i, &header->family));
    } else if (key == "params") {
      DISLOCK_RETURN_NOT_OK(ParseParamsObject(line, &i, &header->params));
    } else if (key == wire::kSchemaVersionKey || key == "trace_version" ||
               key == "seed" || key == "records") {
      std::string token = ScanNumberToken(line, &i);
      char* end = nullptr;
      if (key == "seed") {
        header->seed = std::strtoull(token.c_str(), &end, 10);
      } else {
        long long value = std::strtoll(token.c_str(), &end, 10);
        if (key == wire::kSchemaVersionKey) {
          header->schema_version = static_cast<int>(value);
        } else if (key == "trace_version") {
          header->trace_version = static_cast<int>(value);
        } else {
          header->records = value;
        }
      }
      if (token.empty() || end != token.c_str() + token.size()) {
        return Status::InvalidArgument(
            StrCat("trace header \"", key, "\" must be an integer"));
      }
    } else {
      return Status::InvalidArgument(
          StrCat("unknown trace header key '", key, "'"));
    }
    i = SkipWs(line, i);
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    break;  // '}'
  }
  return Status::OK();
}

std::string RenderHeader(const TraceHeader& header) {
  std::ostringstream out;
  out << "{\"" << wire::kSchemaVersionKey
      << "\": " << header.schema_version << ", \"format\": \""
      << kTraceFormatName << "\", \"trace_version\": " << header.trace_version
      << ", \"family\": " << obs::JsonQuote(header.family)
      << ", \"seed\": " << header.seed << ", \"params\": {";
  bool first = true;
  for (const auto& [name, value] : header.params) {
    if (!first) out << ", ";
    first = false;
    out << obs::JsonQuote(name) << ": " << ParamValueToString(value);
  }
  out << "}, \"records\": " << header.records << "}";
  return out.str();
}

}  // namespace

std::string RenderEnvelope(const SessionCommand& cmd) {
  std::string out = StrCat("{\"cmd\": ", obs::JsonQuote(cmd.verb));
  if (!cmd.arg.empty()) {
    out += StrCat(", \"arg\": ", obs::JsonQuote(cmd.arg));
  }
  if (!cmd.block.empty()) {
    out += StrCat(", \"block\": ", obs::JsonQuote(cmd.block));
  }
  out += "}";
  return out;
}

std::string Trace::Serialize() const {
  std::string out = RenderHeader(header);
  out += '\n';
  for (const std::string& record : records) {
    out += record;
    out += '\n';
  }
  return out;
}

TraceWriter::TraceWriter(std::string family, uint64_t seed, ParamMap params) {
  header_.schema_version = wire::kSchemaVersion;
  header_.trace_version = kTraceVersion;
  header_.family = std::move(family);
  header_.seed = seed;
  header_.params = std::move(params);
}

void TraceWriter::Record(const SessionCommand& cmd) {
  records_.push_back(RenderEnvelope(cmd));
}

void TraceWriter::System(const TransactionSystem& system) {
  SessionCommand cmd;
  cmd.verb = "system";
  cmd.block = SystemToText(system);
  Record(cmd);
}

void TraceWriter::Check() {
  SessionCommand cmd;
  cmd.verb = "check";
  Record(cmd);
}

void TraceWriter::Add(const Transaction& txn) {
  SessionCommand cmd;
  cmd.verb = "add";
  cmd.block = TransactionToText(txn);
  Record(cmd);
}

void TraceWriter::Remove(const std::string& name) {
  SessionCommand cmd;
  cmd.verb = "remove";
  cmd.arg = name;
  Record(cmd);
}

void TraceWriter::Replace(const Transaction& txn) {
  SessionCommand cmd;
  cmd.verb = "replace";
  cmd.arg = txn.name();
  cmd.block = TransactionToText(txn);
  Record(cmd);
}

Trace TraceWriter::Finish() {
  Trace trace;
  trace.header = header_;
  trace.header.records = records();
  trace.records = std::move(records_);
  records_.clear();
  return trace;
}

Result<Trace> ParseTrace(const std::string& text) {
  std::vector<std::string> lines = Split(text, '\n');
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty()) {
    return Status::InvalidArgument("empty trace: missing header line");
  }
  std::string jerr;
  if (!obs::IsValidJson(lines[0], &jerr)) {
    return Status::InvalidArgument(
        StrCat("trace header is not valid JSON: ", jerr));
  }
  Trace trace;
  std::string format;
  DISLOCK_RETURN_NOT_OK(ParseHeaderLine(lines[0], &trace.header, &format));
  if (format != kTraceFormatName) {
    return Status::InvalidArgument(StrCat(
        "not a ", kTraceFormatName, " file (format \"", format, "\")"));
  }
  if (trace.header.schema_version != wire::kSchemaVersion) {
    return Status::InvalidArgument(
        StrCat("trace speaks session schema_version ",
               trace.header.schema_version, "; this build expects ",
               wire::kSchemaVersion));
  }
  if (trace.header.trace_version != kTraceVersion) {
    return Status::InvalidArgument(
        StrCat("trace has trace_version ", trace.header.trace_version,
               "; this build expects ", kTraceVersion));
  }
  auto body_lines = static_cast<int64_t>(lines.size()) - 1;
  if (trace.header.records != body_lines) {
    return Status::InvalidArgument(
        StrCat("trace header promises ", trace.header.records,
               " records, file has ", body_lines,
               " (truncated or corrupted)"));
  }
  for (size_t n = 1; n < lines.size(); ++n) {
    const std::string& line = lines[n];
    if (!obs::IsValidJson(line, &jerr)) {
      return Status::InvalidArgument(
          StrCat("trace record ", n, " is not valid JSON: ", jerr));
    }
    size_t i = SkipWs(line, 0);
    if (i >= line.size() || line[i] != '{') {
      return Status::InvalidArgument(
          StrCat("trace record ", n, " is not a JSON object"));
    }
    trace.records.push_back(line);
  }
  return trace;
}

Result<Trace> GenerateTrace(const std::string& family,
                            const ParamMap& overrides, uint64_t seed) {
  const WorkloadFamily* found = FindFamily(family);
  if (found == nullptr) {
    return Status::NotFound(StrCat("unknown workload family '", family,
                                   "' (try: ",
                                   Join(RegisteredFamilies(), ", "), ")"));
  }
  auto params = ResolveParams(found->spec(), overrides);
  if (!params.ok()) return params.status();
  Rng rng(seed);
  TraceWriter writer(family, seed, *params);
  found->Emit(*params, &rng, &writer);
  return writer.Finish();
}

}  // namespace gen
}  // namespace dislock
