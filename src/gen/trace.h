#ifndef DISLOCK_GEN_TRACE_H_
#define DISLOCK_GEN_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/incremental/session_core.h"
#include "gen/family.h"
#include "txn/system.h"
#include "util/status.h"

namespace dislock {
namespace gen {

/// Version of the .dlt trace container itself (the header shape and the
/// record framing). Orthogonal to wire::kSchemaVersion, which versions the
/// session protocol the record lines speak: a reader must match BOTH.
inline constexpr int kTraceVersion = 1;
inline constexpr char kTraceFormatName[] = "dislock-trace";

/// The first line of every .dlt file. Everything after it is one session
/// JSON envelope per line — the exact lines a serve client would send, so
/// a trace replays 1:1 through `dislock session --json`, a SessionCore, or
/// a live `dislock_serve` endpoint with no translation layer.
struct TraceHeader {
  int schema_version = 0;
  int trace_version = 0;
  std::string family;
  uint64_t seed = 0;
  ParamMap params;
  /// Number of record lines that follow; a mismatch at parse time means a
  /// truncated or corrupted file and is rejected.
  int64_t records = 0;
};

/// A parsed (or freshly generated) trace.
struct Trace {
  TraceHeader header;
  /// Raw record lines, newline-free, each a validated JSON object.
  std::vector<std::string> records;

  /// Renders the canonical .dlt bytes (header line + record lines, each
  /// '\n'-terminated). ParseTrace(Serialize()) round-trips exactly.
  std::string Serialize() const;
};

/// Renders one session command as its JSON envelope line (no trailing
/// newline); empty arg/block are omitted. This is the session wire format
/// of src/core/incremental/session_core.h, byte for byte.
std::string RenderEnvelope(const SessionCommand& cmd);

/// Accumulates the records of one trace. Families call the typed helpers;
/// Finish() stamps the header with the final record count.
class TraceWriter {
 public:
  TraceWriter(std::string family, uint64_t seed, ParamMap params);

  /// Appends one command as an envelope record.
  void Record(const SessionCommand& cmd);

  /// The inline-system record: `{"cmd": "system", "block": <dlk text>}`,
  /// the self-contained replacement for `load <path>`.
  void System(const TransactionSystem& system);

  void Check();
  /// add with the txn rendered as a `txn ... end` block.
  void Add(const Transaction& txn);
  void Remove(const std::string& name);
  /// replace targeting `txn.name()`, block rendered like Add.
  void Replace(const Transaction& txn);

  Trace Finish();

  int64_t records() const { return static_cast<int64_t>(records_.size()); }

 private:
  TraceHeader header_;
  std::vector<std::string> records_;
};

/// Parses and validates a .dlt file: the header must carry the
/// dislock-trace format marker, a matching schema_version AND
/// trace_version, and a record count equal to the number of record lines;
/// every record line must be a JSON object. Anything else is an error —
/// a trace is replayed against live systems, so a reader never guesses.
Result<Trace> ParseTrace(const std::string& text);

/// Generates the named family's trace: resolves params, seeds an Rng, and
/// runs the family's Emit. The one entry point behind `dislock gen`.
Result<Trace> GenerateTrace(const std::string& family,
                            const ParamMap& overrides = {},
                            uint64_t seed = kDefaultSeed);

}  // namespace gen
}  // namespace dislock

#endif  // DISLOCK_GEN_TRACE_H_
