#include "gen/family.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/wire_keys.h"
#include "gen/trace.h"
#include "obs/json.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dislock {
namespace gen {

void WorkloadFamily::Emit(const ParamMap& params, Rng* rng,
                          TraceWriter* writer) const {
  Workload w = Build(params, rng);
  writer->System(*w.system);
  writer->Check();
}

Result<ParamMap> ResolveParams(const FamilySpec& spec,
                               const ParamMap& overrides) {
  ParamMap resolved;
  for (const FamilyParam& p : spec.params) resolved[p.name] = p.default_value;
  for (const auto& [name, value] : overrides) {
    const FamilyParam* param = nullptr;
    for (const FamilyParam& p : spec.params) {
      if (name == p.name) {
        param = &p;
        break;
      }
    }
    if (param == nullptr) {
      return Status::InvalidArgument(StrCat("family '", spec.name,
                                            "' has no parameter '", name,
                                            "'"));
    }
    if (!std::isfinite(value)) {
      return Status::InvalidArgument(
          StrCat("parameter '", name, "' must be finite"));
    }
    if (value < param->min_value) {
      return Status::InvalidArgument(
          StrCat("parameter '", name, "' must be >= ",
                 ParamValueToString(param->min_value), ", got ",
                 ParamValueToString(value)));
    }
    resolved[name] = value;
  }
  return resolved;
}

double GetParam(const ParamMap& params, const char* name) {
  auto it = params.find(name);
  DISLOCK_CHECK(it != params.end());
  return it->second;
}

int GetIntParam(const ParamMap& params, const char* name) {
  return static_cast<int>(std::llround(GetParam(params, name)));
}

Result<Workload> BuildFamily(const std::string& name,
                             const ParamMap& overrides, uint64_t seed) {
  const WorkloadFamily* family = FindFamily(name);
  if (family == nullptr) {
    return Status::NotFound(StrCat("unknown workload family '", name,
                                   "' (try: ",
                                   Join(RegisteredFamilies(), ", "), ")"));
  }
  auto params = ResolveParams(family->spec(), overrides);
  if (!params.ok()) return params.status();
  Rng rng(seed);
  return family->Build(*params, &rng);
}

Result<std::pair<std::string, double>> ParseParamOverride(
    const std::string& text) {
  size_t eq = text.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == text.size()) {
    return Status::InvalidArgument(
        StrCat("expected name=value, got '", text, "'"));
  }
  std::string name = text.substr(0, eq);
  std::string value_text = text.substr(eq + 1);
  char* end = nullptr;
  double value = std::strtod(value_text.c_str(), &end);
  if (end != value_text.c_str() + value_text.size()) {
    return Status::InvalidArgument(
        StrCat("parameter '", name, "' has a non-numeric value '",
               value_text, "'"));
  }
  return std::make_pair(std::move(name), value);
}

std::string ParamValueToString(double value) {
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::string FamilyCatalogToText() {
  std::ostringstream out;
  for (const std::string& name : RegisteredFamilies()) {
    const FamilySpec& spec = FindFamily(name)->spec();
    out << spec.name << "\n  " << spec.description << "\n";
    for (const FamilyParam& p : spec.params) {
      out << "  --param " << p.name << "="
          << ParamValueToString(p.default_value) << "  " << p.description
          << " (min " << ParamValueToString(p.min_value) << ")\n";
    }
  }
  return out.str();
}

std::string FamilyCatalogToJson() {
  std::ostringstream out;
  out << "{\"" << wire::kSchemaVersionKey << "\": " << wire::kSchemaVersion
      << ", \"families\": [";
  bool first_family = true;
  for (const std::string& name : RegisteredFamilies()) {
    const FamilySpec& spec = FindFamily(name)->spec();
    if (!first_family) out << ", ";
    first_family = false;
    out << "{\"name\": " << obs::JsonQuote(spec.name)
        << ", \"description\": " << obs::JsonQuote(spec.description)
        << ", \"params\": [";
    bool first_param = true;
    for (const FamilyParam& p : spec.params) {
      if (!first_param) out << ", ";
      first_param = false;
      out << "{\"name\": " << obs::JsonQuote(p.name)
          << ", \"description\": " << obs::JsonQuote(p.description)
          << ", \"default\": " << ParamValueToString(p.default_value)
          << ", \"min\": " << ParamValueToString(p.min_value) << "}";
    }
    out << "]}";
  }
  out << "]}\n";
  return out.str();
}

}  // namespace gen
}  // namespace dislock
