#include "gen/replay.h"

#include <algorithm>
#include <mutex>
#include <string_view>

#include "core/incremental/session_core.h"
#include "serve/service.h"

namespace dislock {
namespace gen {

namespace {

SessionOptions MakeSessionOptions(const ReplayOptions& options) {
  SessionOptions session;
  session.json = true;
  session.shards = options.shards;
  session.config = options.config;
  session.config.num_threads = options.threads;
  return session;
}

}  // namespace

ReplayResult ReplayDirect(const Trace& trace, const ReplayOptions& options) {
  SessionCore core(MakeSessionOptions(options));
  CommandAssembler assembler(&core);
  ReplayResult result;
  for (const std::string& record : trace.records) {
    CommandAssembler::Step step = assembler.Consume(record);
    if (step.response.has_value()) result.output += *step.response;
    if (step.quit) break;
    if (step.command.has_value()) {
      result.output += core.Execute(*step.command).response;
    }
  }
  if (auto tail = assembler.Finish()) result.output += *tail;
  result.commands = core.commands();
  result.checks = core.checks();
  result.errors = core.errors();
  return result;
}

ReplayResult ReplayService(const Trace& trace, const ReplayOptions& options) {
  serve::ServiceOptions service_options;
  service_options.session = MakeSessionOptions(options);
  serve::SafetyService service(service_options);
  std::mutex mu;
  std::string output;
  int64_t client = service.OpenClient([&](const std::string& text) {
    std::lock_guard<std::mutex> lock(mu);
    output += text;
  });
  for (const std::string& record : trace.records) {
    service.Submit(client, record);
  }
  service.CloseClient(client);
  service.Drain();
  ReplayResult result;
  result.commands = service.commands();
  result.errors = service.errors();
  {
    std::lock_guard<std::mutex> lock(mu);
    result.output = std::move(output);
  }
  std::string checks = CheckLines(result.output);
  result.checks = std::count(checks.begin(), checks.end(), '\n');
  service.Shutdown();
  return result;
}

std::string CheckLines(const std::string& output) {
  std::string out;
  size_t start = 0;
  while (start < output.size()) {
    size_t end = output.find('\n', start);
    if (end == std::string::npos) end = output.size();
    std::string_view line(output.data() + start, end - start);
    if (line.find("\"cmd\": \"check\"") != std::string_view::npos) {
      out.append(line);
      out.push_back('\n');
    }
    start = end + 1;
  }
  return out;
}

VerifyResult VerifyReplay(const Trace& trace,
                          const std::vector<int>& shards_grid,
                          const std::vector<int>& threads_grid) {
  ReplayOptions reference_options;
  ReplayResult reference = ReplayDirect(trace, reference_options);
  std::string want = CheckLines(reference.output);
  VerifyResult result;
  for (int shards : shards_grid) {
    for (int threads : threads_grid) {
      ReplayOptions options;
      options.shards = shards;
      options.threads = threads;
      ReplayResult got = ReplayService(trace, options);
      VerifyCell cell;
      cell.shards = shards;
      cell.threads = threads;
      cell.identical = CheckLines(got.output) == want;
      cell.errors = got.errors;
      result.ok =
          result.ok && cell.identical && cell.errors == reference.errors;
      result.cells.push_back(cell);
    }
  }
  return result;
}

}  // namespace gen
}  // namespace dislock
