#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/policy.h"
#include "gen/family.h"
#include "gen/trace.h"
#include "sat/reduction.h"
#include "txn/builder.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dislock {
namespace gen {

namespace {

/// Shared scaffolding: a fresh two-site database with entities e0..e{n-1}
/// alternating sites — the layout the historical bench builders used.
Workload MakeTwoSiteDb(int entities) {
  Workload w;
  w.db = std::make_shared<DistributedDatabase>(2);
  for (int e = 0; e < entities; ++e) {
    w.db->MustAddEntity(StrCat("e", e), e % 2);
  }
  w.system = std::make_shared<TransactionSystem>(w.db.get());
  return w;
}

/// Samples `count` distinct entity ids from [0, entities) under `weight`
/// (cumulative distribution); ascending in the result so the built
/// transaction's step order is canonical.
std::vector<EntityId> SampleDistinct(int entities, int count,
                                     const std::vector<double>& cumulative,
                                     Rng* rng) {
  std::vector<bool> chosen(static_cast<size_t>(entities), false);
  int have = 0;
  double total = cumulative.back();
  while (have < count) {
    double r = rng->UniformDouble() * total;
    auto it = std::lower_bound(cumulative.begin(), cumulative.end(), r);
    auto idx = static_cast<size_t>(it - cumulative.begin());
    if (idx >= chosen.size()) idx = chosen.size() - 1;
    if (!chosen[idx]) {
      chosen[idx] = true;
      ++have;
    }
  }
  std::vector<EntityId> picked;
  picked.reserve(static_cast<size_t>(count));
  for (int e = 0; e < entities; ++e) {
    if (chosen[static_cast<size_t>(e)]) {
      picked.push_back(static_cast<EntityId>(e));
    }
  }
  return picked;
}

/// Uniform cumulative weights (SampleDistinct degenerates to uniform).
std::vector<double> UniformCumulative(int entities) {
  std::vector<double> cumulative(static_cast<size_t>(entities));
  for (int e = 0; e < entities; ++e) {
    cumulative[static_cast<size_t>(e)] = static_cast<double>(e + 1);
  }
  return cumulative;
}

// ---- ring -----------------------------------------------------------------

/// The historical MakeRingSystem of tools/dislock_bench.cc, byte for byte:
/// k strongly-two-phase transactions over a sparse entity ring (Ti locks
/// {e_i, e_(i+1 mod k)}), so the conflict graph G is a ring and the pair
/// tests dominate.
class RingFamily : public WorkloadFamily {
 public:
  const FamilySpec& spec() const override {
    static const FamilySpec kSpec{
        "ring",
        "sparse entity ring over two sites: Ti locks {e_i, e_(i+1 mod k)}, "
        "G is a ring and the Theorem 1 pair tests dominate",
        {{"k", "number of transactions (= entities)", 8, 2}}};
    return kSpec;
  }

  Workload Build(const ParamMap& params, Rng*) const override {
    int k = GetIntParam(params, "k");
    Workload w = MakeTwoSiteDb(k);
    for (int t = 0; t < k; ++t) {
      w.system->Add(MakeTwoPhaseTransaction(
          w.db.get(), StrCat("T", t + 1),
          {static_cast<EntityId>(t), static_cast<EntityId>((t + 1) % k)}));
    }
    return w;
  }
};

// ---- dense ----------------------------------------------------------------

/// The historical MakeDenseSystem: every transaction locks every entity, so
/// G is complete and the (capped) cycle enumeration dominates — the
/// embarrassingly parallel regime.
class DenseFamily : public WorkloadFamily {
 public:
  const FamilySpec& spec() const override {
    static const FamilySpec kSpec{
        "dense",
        "every transaction locks every entity: G is complete and the capped "
        "cycle enumeration dominates",
        {{"k", "number of transactions", 8, 2},
         {"entities", "number of commonly locked entities", 3, 1}}};
    return kSpec;
  }

  Workload Build(const ParamMap& params, Rng*) const override {
    int k = GetIntParam(params, "k");
    int entities = GetIntParam(params, "entities");
    Workload w = MakeTwoSiteDb(entities);
    std::vector<EntityId> all;
    for (int e = 0; e < entities; ++e) all.push_back(static_cast<EntityId>(e));
    for (int t = 0; t < k; ++t) {
      w.system->Add(
          MakeTwoPhaseTransaction(w.db.get(), StrCat("T", t + 1), all));
    }
    return w;
  }
};

// ---- two_site -------------------------------------------------------------

/// Two-site fast-path-heavy: every transaction is strongly two-phase over a
/// uniform random entity subset, so each pair resolves on the Theorem 1 SCC
/// fast path (strongly two-phase pairs have complete D).
class TwoSiteFamily : public WorkloadFamily {
 public:
  const FamilySpec& spec() const override {
    static const FamilySpec kSpec{
        "two_site",
        "two-site fast-path-heavy mix: strongly two-phase transactions over "
        "random entity subsets, every pair decided by the Theorem 1 SCC test",
        {{"k", "number of transactions", 12, 1},
         {"entities", "number of entities over the two sites", 6, 2},
         {"locks", "entities locked per transaction (capped at entities)", 3,
          1}}};
    return kSpec;
  }

  Workload Build(const ParamMap& params, Rng* rng) const override {
    int k = GetIntParam(params, "k");
    int entities = GetIntParam(params, "entities");
    int locks = std::min(GetIntParam(params, "locks"), entities);
    Workload w = MakeTwoSiteDb(entities);
    std::vector<double> cumulative = UniformCumulative(entities);
    for (int t = 0; t < k; ++t) {
      w.system->Add(MakeTwoPhaseTransaction(
          w.db.get(), StrCat("T", t + 1),
          SampleDistinct(entities, locks, cumulative, rng)));
    }
    return w;
  }
};

// ---- fig5 -----------------------------------------------------------------

/// Parametric Fig. 5 copies: each copy is the paper's four-site safe pair
/// whose D(T1,T2) is NOT strongly connected (its only dominator is
/// X = {x1, x2}) yet the Definition 3 closure contradicts itself — the
/// regime where Theorem 1 is not tight and the closure/SAT stages must run.
class Fig5Family : public WorkloadFamily {
 public:
  const FamilySpec& spec() const override {
    static const FamilySpec kSpec{
        "fig5",
        "disjoint copies of the paper's Fig. 5 four-site safe pair (D not "
        "strongly connected; decided by the dominator-closure stage, not "
        "Theorem 1)",
        {{"copies", "number of disjoint four-site copies", 1, 1}}};
    return kSpec;
  }

  Workload Build(const ParamMap& params, Rng*) const override {
    int copies = GetIntParam(params, "copies");
    Workload w;
    w.db = std::make_shared<DistributedDatabase>(4 * copies);
    for (int c = 0; c < copies; ++c) {
      w.db->MustAddEntity(StrCat("x1_", c), 4 * c);
      w.db->MustAddEntity(StrCat("x2_", c), 4 * c + 1);
      w.db->MustAddEntity(StrCat("y1_", c), 4 * c + 2);
      w.db->MustAddEntity(StrCat("y2_", c), 4 * c + 3);
    }
    w.system = std::make_shared<TransactionSystem>(w.db.get());
    for (int c = 0; c < copies; ++c) AddFig5Pair(&w, c);
    return w;
  }

 private:
  /// The exact edge pattern of core/paper.cc MakeFig5Instance, with names
  /// suffixed by the copy index.
  static void AddFig5Pair(Workload* w, int c) {
    auto name = [c](const char* base) { return StrCat(base, "_", c); };
    {
      TransactionBuilder b(w->db.get(), name("T1"));
      StepId lx1 = b.Lock(name("x1")), ux1 = b.Unlock(name("x1"));
      StepId lx2 = b.Lock(name("x2")), ux2 = b.Unlock(name("x2"));
      StepId ly1 = b.Lock(name("y1")), uy1 = b.Unlock(name("y1"));
      StepId ly2 = b.Lock(name("y2")), uy2 = b.Unlock(name("y2"));
      b.Edge(lx1, ux2).Edge(lx2, ux1);
      b.Edge(ly1, uy2).Edge(ly2, uy1);
      b.Edge(ly1, ux1).Edge(ly2, ux2);
      b.Edge(lx1, uy1);
      w->system->Add(b.Build());
    }
    {
      TransactionBuilder b(w->db.get(), name("T2"));
      StepId lx1 = b.Lock(name("x1")), ux1 = b.Unlock(name("x1"));
      StepId lx2 = b.Lock(name("x2")), ux2 = b.Unlock(name("x2"));
      StepId ly1 = b.Lock(name("y1")), uy1 = b.Unlock(name("y1"));
      StepId ly2 = b.Lock(name("y2")), uy2 = b.Unlock(name("y2"));
      b.Edge(lx2, ux1).Edge(lx1, ux2);
      b.Edge(ly2, uy1).Edge(ly1, uy2);
      b.Edge(lx2, uy1).Edge(lx1, uy2);
      b.Edge(ly1, ux1);
      w->system->Add(b.Build());
    }
  }
};

// ---- hotkey ---------------------------------------------------------------

/// Zipfian hot-key skew: entity e_i is drawn with weight 1/(i+1)^skew, so a
/// few hot entities appear in most transactions — the contention regime
/// where lock-manager behavior actually differentiates.
class HotkeyFamily : public WorkloadFamily {
 public:
  const FamilySpec& spec() const override {
    static const FamilySpec kSpec{
        "hotkey",
        "Zipfian hot-key skew: entities drawn with weight 1/(i+1)^skew, a "
        "few hot entities dominate the lock footprints",
        {{"k", "number of transactions", 16, 1},
         {"entities", "number of entities", 12, 2},
         {"sites", "number of sites (entities round-robin)", 4, 1},
         {"locks", "entities locked per transaction (capped at entities)", 3,
          1},
         {"skew", "Zipf exponent (0 = uniform)", 1.2, 0}}};
    return kSpec;
  }

  Workload Build(const ParamMap& params, Rng* rng) const override {
    int k = GetIntParam(params, "k");
    int entities = GetIntParam(params, "entities");
    int sites = GetIntParam(params, "sites");
    int locks = std::min(GetIntParam(params, "locks"), entities);
    double skew = GetParam(params, "skew");
    Workload w;
    w.db = std::make_shared<DistributedDatabase>(sites);
    for (int e = 0; e < entities; ++e) {
      w.db->MustAddEntity(StrCat("e", e), e % sites);
    }
    w.system = std::make_shared<TransactionSystem>(w.db.get());
    std::vector<double> cumulative(static_cast<size_t>(entities));
    double total = 0;
    for (int e = 0; e < entities; ++e) {
      total += 1.0 / std::pow(static_cast<double>(e + 1), skew);
      cumulative[static_cast<size_t>(e)] = total;
    }
    for (int t = 0; t < k; ++t) {
      w.system->Add(MakeTwoPhaseTransaction(
          w.db.get(), StrCat("T", t + 1),
          SampleDistinct(entities, locks, cumulative, rng)));
    }
    return w;
  }
};

// ---- sat_gadget -----------------------------------------------------------

/// Theorem 3 adversarial gadgets: a random restricted CNF (clauses of 2-3
/// literals, each variable <= 2 unnegated / <= 1 negated occurrences)
/// reduced to the two-transaction system that is unsafe iff the formula is
/// satisfiable — every entity on its own site, the coNP-hard regime.
class SatGadgetFamily : public WorkloadFamily {
 public:
  const FamilySpec& spec() const override {
    static const FamilySpec kSpec{
        "sat_gadget",
        "Theorem 3 reduction of a random restricted CNF: two transactions, "
        "one site per entity, unsafe iff the formula is satisfiable",
        {{"vars", "number of CNF variables", 6, 1},
         {"clauses",
          "CNF clauses to attempt (fewer emitted if occurrence budgets run "
          "out)",
          5, 1}}};
    return kSpec;
  }

  Workload Build(const ParamMap& params, Rng* rng) const override {
    int vars = GetIntParam(params, "vars");
    int clauses = GetIntParam(params, "clauses");
    Cnf cnf = MakeRestrictedCnf(vars, clauses, rng);
    DISLOCK_CHECK(cnf.IsRestrictedForm());
    auto reduced = ReduceCnfToTransactions(cnf);
    DISLOCK_CHECK(reduced.ok());
    Workload w;
    w.db = reduced->db;
    w.system = reduced->system;
    return w;
  }

 private:
  /// Draws clauses uniformly from the literals whose restricted-form
  /// occurrence budget (2 positive, 1 negative per variable) is not yet
  /// spent; stops early when fewer than two budgeted variables remain.
  static Cnf MakeRestrictedCnf(int vars, int clauses, Rng* rng) {
    Cnf cnf;
    cnf.num_vars = vars;
    std::vector<int> pos_budget(static_cast<size_t>(vars), 2);
    std::vector<int> neg_budget(static_cast<size_t>(vars), 1);
    for (int i = 0; i < clauses; ++i) {
      int len = static_cast<int>(rng->UniformInt(2, 3));
      Clause clause;
      std::vector<bool> used(static_cast<size_t>(vars), false);
      for (int j = 0; j < len; ++j) {
        std::vector<Literal> candidates;
        for (int v = 0; v < vars; ++v) {
          if (used[static_cast<size_t>(v)]) continue;
          if (pos_budget[static_cast<size_t>(v)] > 0) {
            candidates.push_back({v + 1, false});
          }
          if (neg_budget[static_cast<size_t>(v)] > 0) {
            candidates.push_back({v + 1, true});
          }
        }
        if (candidates.empty()) break;
        Literal lit = candidates[rng->Index(candidates.size())];
        used[static_cast<size_t>(lit.var - 1)] = true;
        if (lit.negated) {
          --neg_budget[static_cast<size_t>(lit.var - 1)];
        } else {
          --pos_budget[static_cast<size_t>(lit.var - 1)];
        }
        clause.push_back(lit);
      }
      if (static_cast<int>(clause.size()) < 2) break;
      cnf.clauses.push_back(std::move(clause));
    }
    return cnf;
  }
};

// ---- churn ----------------------------------------------------------------

/// Edit-mix stream for the incremental engine: a ring base, then a seeded
/// add/remove/replace mix with periodic checks — each check's delta is
/// small, so reuse (not recompute) carries the run.
class ChurnFamily : public WorkloadFamily {
 public:
  const FamilySpec& spec() const override {
    static const FamilySpec kSpec{
        "churn",
        "incremental edit mix: ring base, then seeded add/remove/replace "
        "edits with a check every few edits (delta re-analysis regime)",
        {{"k", "transactions in the ring base", 8, 2},
         {"edits", "number of add/remove/replace records", 12, 0},
         {"check_every", "emit a check after this many edits", 4, 1}}};
    return kSpec;
  }

  Workload Build(const ParamMap& params, Rng*) const override {
    int k = GetIntParam(params, "k");
    Workload w = MakeTwoSiteDb(k);
    for (int t = 0; t < k; ++t) {
      w.system->Add(MakeTwoPhaseTransaction(
          w.db.get(), StrCat("T", t + 1),
          {static_cast<EntityId>(t), static_cast<EntityId>((t + 1) % k)}));
    }
    return w;
  }

  void Emit(const ParamMap& params, Rng* rng,
            TraceWriter* writer) const override {
    Workload w = Build(params, rng);
    writer->System(*w.system);
    writer->Check();
    int k = GetIntParam(params, "k");
    int edits = GetIntParam(params, "edits");
    int check_every = GetIntParam(params, "check_every");
    std::vector<std::string> live;
    for (int t = 0; t < k; ++t) live.push_back(StrCat("T", t + 1));
    int next_id = k + 1;
    for (int i = 0; i < edits; ++i) {
      int op = static_cast<int>(rng->UniformInt(0, 2));
      if (op == 1 && live.size() <= 2) op = 0;  // keep >= 2 live txns
      auto ring_pair = [&](bool reversed) {
        auto a = static_cast<EntityId>(rng->UniformInt(0, k - 1));
        auto b = static_cast<EntityId>((a + 1) % k);
        return reversed ? std::vector<EntityId>{b, a}
                        : std::vector<EntityId>{a, b};
      };
      if (op == 0) {
        std::string fresh = StrCat("T", next_id++);
        writer->Add(
            MakeTwoPhaseTransaction(w.db.get(), fresh, ring_pair(false)));
        live.push_back(fresh);
      } else if (op == 1) {
        size_t victim = rng->Index(live.size());
        writer->Remove(live[victim]);
        live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
      } else {
        size_t victim = rng->Index(live.size());
        writer->Replace(
            MakeTwoPhaseTransaction(w.db.get(), live[victim],
                                    ring_pair(true)));
      }
      if ((i + 1) % check_every == 0) writer->Check();
    }
    writer->Check();
  }
};

// ---- registry -------------------------------------------------------------

const std::vector<const WorkloadFamily*>& AllFamilies() {
  static const auto* kFamilies = [] {
    auto* families = new std::vector<const WorkloadFamily*>;
    families->push_back(new RingFamily);
    families->push_back(new DenseFamily);
    families->push_back(new TwoSiteFamily);
    families->push_back(new Fig5Family);
    families->push_back(new HotkeyFamily);
    families->push_back(new SatGadgetFamily);
    families->push_back(new ChurnFamily);
    return families;
  }();
  return *kFamilies;
}

}  // namespace

std::vector<std::string> RegisteredFamilies() {
  std::vector<std::string> names;
  for (const WorkloadFamily* family : AllFamilies()) {
    names.push_back(family->spec().name);
  }
  return names;
}

const WorkloadFamily* FindFamily(const std::string& name) {
  for (const WorkloadFamily* family : AllFamilies()) {
    if (name == family->spec().name) return family;
  }
  return nullptr;
}

}  // namespace gen
}  // namespace dislock
