#ifndef DISLOCK_GEN_REPLAY_H_
#define DISLOCK_GEN_REPLAY_H_

#include <string>
#include <vector>

#include "core/decision/config.h"
#include "gen/trace.h"

namespace dislock {
namespace gen {

/// How to drive a trace. `threads` and `shards` mirror the session flags;
/// `config` carries everything else (budgets, cache, store, obs hooks).
struct ReplayOptions {
  int shards = 1;
  int threads = 1;
  EngineConfig config;
};

/// One replay's outcome. `output` is every response byte in order — the
/// session JSON-lines protocol, diffable against any other transport.
struct ReplayResult {
  std::string output;
  int64_t commands = 0;
  int64_t checks = 0;
  int errors = 0;
};

/// Replays through a SessionCore directly (the in-process fast path: one
/// CommandAssembler, one Execute per record). This is the reference
/// replay every other transport is byte-compared against.
ReplayResult ReplayDirect(const Trace& trace, const ReplayOptions& options);

/// Replays through an in-process serve::SafetyService — the exact
/// object `dislock_serve` wraps in its TCP accept loop, minus the
/// sockets: one client, global arrival order, sequencer thread.
ReplayResult ReplayService(const Trace& trace, const ReplayOptions& options);

/// The shard-invariant projection of a replay: only the `"cmd": "check"`
/// response lines. Full outputs may differ across shard counts in the
/// lane-allocated `add` ids (documented in docs/serve.md); check reports
/// may not differ by a single byte.
std::string CheckLines(const std::string& output);

/// One cell of a verification grid.
struct VerifyCell {
  int shards = 0;
  int threads = 0;
  bool identical = false;
  int errors = 0;
};

/// Result of VerifyReplay: `ok` iff every cell's check lines are
/// byte-identical to the direct 1-shard/1-thread replay and no cell saw a
/// failed command.
struct VerifyResult {
  bool ok = true;
  std::vector<VerifyCell> cells;
};

/// The byte-identity gate: replays the trace directly at 1 shard/1
/// thread, then through the in-process service at every (shards x
/// threads) grid point, comparing check lines. The tests, `dislock
/// replay --verify`, and `dislock_bench --bench=trace` all run this one
/// gate.
VerifyResult VerifyReplay(const Trace& trace,
                          const std::vector<int>& shards_grid = {1, 4},
                          const std::vector<int>& threads_grid = {1, 4});

}  // namespace gen
}  // namespace dislock

#endif  // DISLOCK_GEN_REPLAY_H_
