#ifndef DISLOCK_GEN_FAMILY_H_
#define DISLOCK_GEN_FAMILY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/workload.h"
#include "util/random.h"
#include "util/status.h"

namespace dislock {
namespace gen {

class TraceWriter;

/// Every generated workload is reproducible from (family, params, seed);
/// this is the seed tools use when none is given.
inline constexpr uint64_t kDefaultSeed = 42;

/// One named numeric parameter of a family: self-describing (the catalog
/// renders name, description, and default) and validated (values below
/// `min_value` are rejected before any construction runs).
struct FamilyParam {
  const char* name;
  const char* description;
  double default_value;
  double min_value;
};

/// The self-description of a workload family: its registry name, a
/// one-line description carrying the paper/motivation grounding, and the
/// full parameter surface.
struct FamilySpec {
  const char* name;
  const char* description;
  std::vector<FamilyParam> params;
};

/// A parameter assignment, name -> value. Families read integral
/// parameters by rounding, so `{"k", 8}` and `{"k", 8.0}` agree.
using ParamMap = std::map<std::string, double>;

/// A registered workload family: the single definition of one synthetic
/// scenario, shared by `dislock gen`, `dislock replay`, `dislock_bench`,
/// and the bench/ binaries (which all used to re-implement their own ring
/// and dense constructors ad hoc).
///
/// Families are deterministic: Build and Emit depend only on the resolved
/// params and the caller's Rng seed, never on global state — a committed
/// trace regenerates byte-identically on any machine.
class WorkloadFamily {
 public:
  virtual ~WorkloadFamily() = default;

  virtual const FamilySpec& spec() const = 0;

  /// Builds the family's base transaction system. `params` must be
  /// resolved (ResolveParams): every spec parameter present, nothing else.
  virtual Workload Build(const ParamMap& params, Rng* rng) const = 0;

  /// Appends the family's trace records (system / edit / check) to
  /// `writer`. The default emits the built system followed by one check;
  /// churn-style families override this with an edit stream.
  virtual void Emit(const ParamMap& params, Rng* rng,
                    TraceWriter* writer) const;
};

/// Registered family names, in catalog order.
std::vector<std::string> RegisteredFamilies();

/// Looks a family up by name; nullptr when unknown.
const WorkloadFamily* FindFamily(const std::string& name);

/// Applies `overrides` on top of the spec defaults. Fails on a parameter
/// name the spec does not declare, a non-finite value, or a value below
/// the parameter's minimum.
Result<ParamMap> ResolveParams(const FamilySpec& spec,
                               const ParamMap& overrides);

/// Reads a resolved parameter (checked: the key must exist).
double GetParam(const ParamMap& params, const char* name);
int GetIntParam(const ParamMap& params, const char* name);

/// Convenience: FindFamily + ResolveParams + Build with an Rng seeded from
/// `seed`. This is the one call sites like the benches need.
Result<Workload> BuildFamily(const std::string& name,
                             const ParamMap& overrides = {},
                             uint64_t seed = kDefaultSeed);

/// Parses one "name=value" override (the `--param` flag surface).
Result<std::pair<std::string, double>> ParseParamOverride(
    const std::string& text);

/// Renders a parameter value for the catalog and the trace header:
/// integral values print as integers, everything else with the shortest
/// representation that parses back to the same double (so a committed
/// trace's params round-trip exactly).
std::string ParamValueToString(double value);

/// The self-describing catalog, for `dislock gen --list`.
std::string FamilyCatalogToText();
std::string FamilyCatalogToJson();

}  // namespace gen
}  // namespace dislock

#endif  // DISLOCK_GEN_FAMILY_H_
