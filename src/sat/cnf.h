#ifndef DISLOCK_SAT_CNF_H_
#define DISLOCK_SAT_CNF_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace dislock {

/// A propositional literal: variable index (1-based) with a sign.
/// Encoded DIMACS-style as a nonzero int: +v or -v.
struct Literal {
  int var = 0;      ///< 1-based variable index
  bool negated = false;

  /// DIMACS integer encoding.
  int Encoded() const { return negated ? -var : var; }
  static Literal FromEncoded(int code) {
    return {code < 0 ? -code : code, code < 0};
  }
  Literal Negated() const { return {var, !negated}; }
  bool operator==(const Literal&) const = default;
};

/// A clause: a disjunction of literals.
using Clause = std::vector<Literal>;

/// A CNF formula.
struct Cnf {
  int num_vars = 0;
  std::vector<Clause> clauses;

  /// Occurrence counts of variable v (1-based).
  int PositiveOccurrences(int var) const;
  int NegativeOccurrences(int var) const;

  /// True iff every clause has <= `max_len` literals, every variable occurs
  /// at most twice unnegated and at most once negated — the restricted SAT
  /// variant Theorem 3 reduces from.
  bool IsRestrictedForm(int max_len = 3) const;

  /// True iff `assignment` (index 0 unused; [1..num_vars]) satisfies every
  /// clause.
  bool IsSatisfiedBy(const std::vector<bool>& assignment) const;

  /// "(x1 v ~x2 v x3) ^ (...)" rendering.
  std::string ToString() const;

  /// DIMACS "p cnf" serialization.
  std::string ToDimacs() const;
};

/// Parses a DIMACS CNF file body. Comment lines ("c ...") are ignored.
Result<Cnf> ParseDimacs(const std::string& text);

/// Convenience constructor from DIMACS-encoded clause lists, e.g.
/// MakeCnf(3, {{1, 2, 3}, {-1, 2, -3}}).
Cnf MakeCnf(int num_vars, const std::vector<std::vector<int>>& clauses);

}  // namespace dislock

#endif  // DISLOCK_SAT_CNF_H_
