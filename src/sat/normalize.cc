#include "sat/normalize.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/logging.h"

namespace dislock {

std::vector<bool> RestrictedCnf::LiftModel(
    const std::vector<bool>& model) const {
  std::vector<bool> out(original_num_vars + 1, false);
  for (const auto& [var, value] : forced) out[var] = value;
  for (int v = 1; v <= original_num_vars; ++v) {
    if (image[v] == 0) continue;
    Literal l = Literal::FromEncoded(image[v]);
    DISLOCK_CHECK_LT(static_cast<size_t>(l.var), model.size());
    out[v] = model[l.var] != l.negated;
  }
  return out;
}

namespace {

/// Removes tautologies and duplicate literals.
std::vector<Clause> CleanClauses(const std::vector<Clause>& clauses) {
  std::vector<Clause> out;
  for (const Clause& c : clauses) {
    std::set<int> codes;
    bool tautology = false;
    Clause cleaned;
    for (const Literal& l : c) {
      if (codes.count(-l.Encoded()) > 0) {
        tautology = true;
        break;
      }
      if (codes.insert(l.Encoded()).second) cleaned.push_back(l);
    }
    if (!tautology) out.push_back(std::move(cleaned));
  }
  return out;
}

}  // namespace

Result<RestrictedCnf> NormalizeToRestricted(const Cnf& input) {
  RestrictedCnf result;
  result.original_num_vars = input.num_vars;
  result.image.assign(input.num_vars + 1, 0);

  // --- Step 1+2: clean, then unit-propagate until no unit clauses remain.
  std::vector<Clause> clauses = CleanClauses(input.clauses);
  std::vector<int8_t> fixed(input.num_vars + 1, -1);  // -1 unset, 0/1 value
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Clause& c : clauses) {
      // Evaluate under `fixed`.
      int unset = 0;
      Literal unit{};
      bool satisfied = false;
      for (const Literal& l : c) {
        if (fixed[l.var] == -1) {
          ++unset;
          unit = l;
        } else if ((fixed[l.var] == 1) != l.negated) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      if (unset == 0) {
        result.trivially_unsat = true;
        return result;
      }
      if (unset == 1) {
        fixed[unit.var] = unit.negated ? 0 : 1;
        changed = true;
      }
    }
  }
  for (int v = 1; v <= input.num_vars; ++v) {
    if (fixed[v] != -1) result.forced.emplace_back(v, fixed[v] == 1);
  }
  // Simplify: drop satisfied clauses and false literals.
  {
    std::vector<Clause> simplified;
    for (const Clause& c : clauses) {
      Clause kept;
      bool satisfied = false;
      for (const Literal& l : c) {
        if (fixed[l.var] == -1) {
          kept.push_back(l);
        } else if ((fixed[l.var] == 1) != l.negated) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) {
        DISLOCK_CHECK_GE(kept.size(), 2u);  // units were propagated away
        simplified.push_back(std::move(kept));
      }
    }
    clauses = std::move(simplified);
  }
  if (clauses.empty()) {
    result.trivially_sat = true;
    return result;
  }

  // --- Renumber the surviving original variables into a dense space.
  int next_var = 0;
  std::map<int, int> dense;  // original var -> dense var
  for (const Clause& c : clauses) {
    for (const Literal& l : c) {
      if (dense.emplace(l.var, next_var + 1).second) ++next_var;
    }
  }
  std::vector<int> dense_to_original(next_var + 1, 0);
  for (const auto& [orig, d] : dense) dense_to_original[d] = orig;
  for (Clause& c : clauses) {
    for (Literal& l : c) l.var = dense.at(l.var);
  }

  // --- Step 3: split clauses longer than 3.
  std::vector<Clause> split;
  for (Clause c : clauses) {
    while (c.size() > 3) {
      int s = ++next_var;  // fresh chaining variable
      Clause head = {c[0], c[1], Literal{s, false}};
      split.push_back(head);
      Clause rest = {Literal{s, true}};
      rest.insert(rest.end(), c.begin() + 2, c.end());
      c = std::move(rest);
    }
    split.push_back(std::move(c));
  }
  clauses = std::move(split);

  // --- Step 4: occurrence budgeting via copy cycles with per-copy flips.
  // Collect occurrences per variable.
  std::map<int, std::vector<std::pair<int, int>>> occurrences;
  for (int ci = 0; ci < static_cast<int>(clauses.size()); ++ci) {
    for (int li = 0; li < static_cast<int>(clauses[ci].size()); ++li) {
      occurrences[clauses[ci][li].var].push_back({ci, li});
    }
  }
  std::vector<Clause> cycle_clauses;
  // representative[dense var] = encoded literal equal to the var's value.
  std::map<int, int> representative;
  for (const auto& [var, occs] : occurrences) {
    int pos = 0;
    int neg = 0;
    for (const auto& [ci, li] : occs) {
      if (clauses[ci][li].negated) {
        ++neg;
      } else {
        ++pos;
      }
    }
    if (pos <= 2 && neg <= 1) {
      representative[var] = var;
      continue;
    }
    const int k = static_cast<int>(occs.size());
    DISLOCK_CHECK_GE(k, 2);
    // Copies c_0..c_{k-1}; copy i is flipped iff occurrence i is negative.
    std::vector<int> copy(k);
    std::vector<bool> flip(k);
    for (int i = 0; i < k; ++i) {
      copy[i] = ++next_var;
      flip[i] = clauses[occs[i].first][occs[i].second].negated;
    }
    representative[var] = flip[0] ? -copy[0] : copy[0];
    // Rewrite occurrence i to its copy: a positive occurrence stays
    // positive on an unflipped copy; a negative occurrence becomes a
    // positive literal of the flipped copy.
    for (int i = 0; i < k; ++i) {
      clauses[occs[i].first][occs[i].second] = Literal{copy[i], false};
    }
    // Equality cycle (~c_i v c_{i+1}), with each literal flipped per its
    // copy's flip bit.
    for (int i = 0; i < k; ++i) {
      int j = (i + 1) % k;
      Clause link = {Literal{copy[i], !flip[i]},
                     Literal{copy[j], flip[j]}};
      // Literal semantics: the link clause encodes v_i -> v_{i+1} on the
      // underlying original value, i.e. (~value_i v value_{i+1}) where
      // value_i = copy_i XOR flip_i.
      cycle_clauses.push_back(std::move(link));
    }
  }
  clauses.insert(clauses.end(), cycle_clauses.begin(), cycle_clauses.end());

  result.cnf.num_vars = next_var;
  result.cnf.clauses = std::move(clauses);
  for (const auto& [orig, d] : dense) {
    auto it = representative.find(d);
    if (it != representative.end()) result.image[orig] = it->second;
  }
  return result;
}

}  // namespace dislock
