#ifndef DISLOCK_SAT_NORMALIZE_H_
#define DISLOCK_SAT_NORMALIZE_H_

#include <utility>
#include <vector>

#include "sat/cnf.h"
#include "util/status.h"

namespace dislock {

/// A CNF in the restricted form Theorem 3 reduces from — every clause has
/// 2 or 3 literals, every variable occurs at most twice unnegated and at
/// most once negated — together with the bookkeeping to map models back to
/// the original formula.
struct RestrictedCnf {
  Cnf cnf;
  /// Set when preprocessing already decided the formula (the restricted
  /// `cnf` is then empty).
  bool trivially_sat = false;
  bool trivially_unsat = false;
  /// Values forced by unit propagation, as (original var, value).
  std::vector<std::pair<int, bool>> forced;
  int original_num_vars = 0;
  /// image[v] (v in [1, original_num_vars]): a DIMACS-encoded literal of
  /// the new formula whose truth value equals original variable v, or 0 if
  /// v was eliminated (forced or unconstrained).
  std::vector<int> image;

  /// Translates a model of `cnf` into a model of the original formula.
  std::vector<bool> LiftModel(const std::vector<bool>& model) const;
};

/// Normalizes an arbitrary CNF into restricted form, preserving
/// satisfiability (and mapping models back via LiftModel):
///   1. drop tautologies and duplicate literals;
///   2. eliminate unit clauses by propagation (the reduction's gadgets need
///      clauses of length >= 2);
///   3. split clauses longer than 3 with fresh chaining variables;
///   4. for each variable exceeding the (<= 2 positive, <= 1 negative)
///      occurrence budget, introduce one copy per occurrence tied together
///      by an implication cycle (~v1 v v2)(~v2 v v3)...(~vk v v1); copies
///      hosting a negative occurrence are then flipped (substituted by
///      their own negation) so every copy lands on budget exactly.
Result<RestrictedCnf> NormalizeToRestricted(const Cnf& input);

}  // namespace dislock

#endif  // DISLOCK_SAT_NORMALIZE_H_
