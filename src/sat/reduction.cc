#include "sat/reduction.h"

#include <algorithm>
#include <set>

#include "util/string_util.h"

namespace dislock {

namespace {

/// Builds the two skeleton transactions from the arc list of D: for each
/// arc (x, y), Lx precedes Uy in T1 and Ly precedes Ux in T2 (plus the
/// lock-before-unlock pairs). All precedences run lock -> unlock, so the
/// orders are bipartite DAGs and D(T1,T2) realizes exactly the given arcs.
struct TxnPair {
  Transaction t1;
  Transaction t2;
  std::vector<StepId> l1, u1, l2, u2;  // per-entity step ids
};

TxnPair MakeSkeletons(const DistributedDatabase* db) {
  TxnPair pair{Transaction(db, "T1(F)"), Transaction(db, "T2(F)"), {}, {},
               {}, {}};
  const int n = db->NumEntities();
  pair.l1.resize(n);
  pair.u1.resize(n);
  pair.l2.resize(n);
  pair.u2.resize(n);
  for (EntityId e = 0; e < n; ++e) {
    pair.l1[e] = pair.t1.AddStep(StepKind::kLock, e);
    pair.u1[e] = pair.t1.AddStep(StepKind::kUnlock, e);
    pair.t1.AddPrecedence(pair.l1[e], pair.u1[e]);
    pair.l2[e] = pair.t2.AddStep(StepKind::kLock, e);
    pair.u2[e] = pair.t2.AddStep(StepKind::kUnlock, e);
    pair.t2.AddPrecedence(pair.l2[e], pair.u2[e]);
  }
  return pair;
}

}  // namespace

Result<ReductionOutput> ReduceCnfToTransactions(const Cnf& formula) {
  // ---- Preconditions.
  if (formula.clauses.empty() || formula.num_vars <= 0) {
    return Status::InvalidArgument("formula must have clauses and variables");
  }
  if (!formula.IsRestrictedForm()) {
    return Status::InvalidArgument(
        "formula is not in restricted form (<= 3 literals per clause, each "
        "variable <= 2 unnegated + <= 1 negated); run NormalizeToRestricted");
  }
  for (const Clause& c : formula.clauses) {
    if (c.size() < 2) {
      return Status::InvalidArgument(
          "clauses must have 2 or 3 literals (unit-propagate first)");
    }
    std::set<int> vars;
    for (const Literal& l : c) {
      if (!vars.insert(l.var).second) {
        return Status::InvalidArgument(
            "clauses must not repeat a variable");
      }
    }
  }

  ReductionOutput out;
  out.formula = formula;
  const int m = formula.num_vars;
  const int num_clauses = static_cast<int>(formula.clauses.size());

  // ---- Name every entity; each lives on its own site.
  std::vector<std::string> names;
  auto reserve = [&names](std::string name) {
    names.push_back(std::move(name));
    return static_cast<EntityId>(names.size() - 1);
  };

  // Upper cycle: u, dummy, c_11, dummy, c_12, dummy, ..., dummy (wraps to u).
  out.u = reserve("u");
  out.upper_cycle.push_back(out.u);
  int dummy_count = 0;
  out.clause_nodes.resize(num_clauses);
  for (int i = 0; i < num_clauses; ++i) {
    for (int j = 0; j < static_cast<int>(formula.clauses[i].size()); ++j) {
      out.upper_cycle.push_back(reserve(StrCat("du", dummy_count++)));
      EntityId c = reserve(StrCat("c", i + 1, "_", j + 1));
      out.clause_nodes[i].push_back(c);
      out.upper_cycle.push_back(c);
    }
  }
  out.upper_cycle.push_back(reserve(StrCat("du", dummy_count++)));

  // Middle row: per variable, w-copies (one per unnegated occurrence) and
  // w' when a negated occurrence exists.
  out.w_nodes.resize(m);
  out.wneg_nodes.assign(m, kInvalidEntity);
  for (int k = 1; k <= m; ++k) {
    int pos = formula.PositiveOccurrences(k);
    int neg = formula.NegativeOccurrences(k);
    if (pos == 1) {
      out.w_nodes[k - 1] = {reserve(StrCat("w", k))};
    } else if (pos == 2) {
      out.w_nodes[k - 1] = {reserve(StrCat("w", k, "a")),
                            reserve(StrCat("w", k, "b"))};
    }
    if (neg == 1) out.wneg_nodes[k - 1] = reserve(StrCat("wn", k));
  }

  // Lower cycle: v, dummy, z_1, dummy, z'_1, dummy, ..., dummy (wraps).
  out.v = reserve("v");
  out.lower_cycle.push_back(out.v);
  out.z_nodes.resize(m);
  out.zneg_nodes.resize(m);
  for (int k = 1; k <= m; ++k) {
    out.lower_cycle.push_back(reserve(StrCat("dl", 2 * k - 2)));
    out.z_nodes[k - 1] = reserve(StrCat("z", k));
    out.lower_cycle.push_back(out.z_nodes[k - 1]);
    out.lower_cycle.push_back(reserve(StrCat("dl", 2 * k - 1)));
    out.zneg_nodes[k - 1] = reserve(StrCat("zn", k));
    out.lower_cycle.push_back(out.zneg_nodes[k - 1]);
  }
  out.lower_cycle.push_back(reserve(StrCat("dl", 2 * m)));

  // ---- Database: one site per entity.
  out.db = std::make_shared<DistributedDatabase>(
      static_cast<int>(names.size()));
  for (size_t e = 0; e < names.size(); ++e) {
    out.db->MustAddEntity(names[e], static_cast<SiteId>(e));
  }

  // ---- The arcs of D.
  std::vector<std::pair<EntityId, EntityId>> arcs;
  auto cycle_arcs = [&arcs](const std::vector<EntityId>& cycle) {
    for (size_t i = 0; i < cycle.size(); ++i) {
      arcs.emplace_back(cycle[i], cycle[(i + 1) % cycle.size()]);
    }
  };
  cycle_arcs(out.upper_cycle);
  cycle_arcs(out.lower_cycle);
  for (int k = 0; k < m; ++k) {
    if (!out.w_nodes[k].empty()) {
      arcs.emplace_back(out.u, out.w_nodes[k][0]);
      arcs.emplace_back(out.w_nodes[k][0], out.v);
      if (out.w_nodes[k].size() == 2) {
        arcs.emplace_back(out.w_nodes[k][0], out.w_nodes[k][1]);
        arcs.emplace_back(out.w_nodes[k][1], out.w_nodes[k][0]);
      }
    }
    if (out.wneg_nodes[k] != kInvalidEntity) {
      arcs.emplace_back(out.u, out.wneg_nodes[k]);
      arcs.emplace_back(out.wneg_nodes[k], out.v);
    }
  }

  // ---- Skeleton transactions realizing D.
  TxnPair pair = MakeSkeletons(out.db.get());
  for (const auto& [x, y] : arcs) {
    pair.t1.AddPrecedence(pair.l1[x], pair.u1[y]);
    pair.t2.AddPrecedence(pair.l2[y], pair.u2[x]);
  }

  // ---- Completion gadgets.
  // (a) Lz_k <1 Uw_k, Lz'_k <1 Uw'_k; Lw_k <2 Uz'_k, Lw'_k <2 Uz_k.
  for (int k = 0; k < m; ++k) {
    EntityId z = out.z_nodes[k];
    EntityId zn = out.zneg_nodes[k];
    if (!out.w_nodes[k].empty()) {
      EntityId w = out.w_nodes[k][0];
      pair.t1.AddPrecedence(pair.l1[z], pair.u1[w]);
      pair.t2.AddPrecedence(pair.l2[w], pair.u2[zn]);
    }
    if (out.wneg_nodes[k] != kInvalidEntity) {
      EntityId wn = out.wneg_nodes[k];
      pair.t1.AddPrecedence(pair.l1[zn], pair.u1[wn]);
      pair.t2.AddPrecedence(pair.l2[wn], pair.u2[z]);
    }
  }
  // (b)/(c): per literal occurrence, with a distinct w-copy per unnegated
  // occurrence and the cyclic-successor clause node on the T2 side.
  {
    std::vector<int> next_pos_copy(m, 0);
    for (int i = 0; i < num_clauses; ++i) {
      const Clause& clause = formula.clauses[i];
      const int len = static_cast<int>(clause.size());
      for (int j = 0; j < len; ++j) {
        const Literal& lit = clause[j];
        EntityId w;
        if (lit.negated) {
          w = out.wneg_nodes[lit.var - 1];
        } else {
          w = out.w_nodes[lit.var - 1][next_pos_copy[lit.var - 1]++];
        }
        DISLOCK_CHECK_NE(w, kInvalidEntity);
        EntityId c = out.clause_nodes[i][j];
        EntityId c_succ = out.clause_nodes[i][(j + 1) % len];
        pair.t1.AddPrecedence(pair.l1[w], pair.u1[c]);
        pair.t2.AddPrecedence(pair.l2[c_succ], pair.u2[w]);
      }
    }
  }

  out.system = std::make_shared<TransactionSystem>(out.db.get());
  out.system->Add(std::move(pair.t1));
  out.system->Add(std::move(pair.t2));
  return out;
}

std::vector<EntityId> AssignmentToDominator(
    const ReductionOutput& reduction, const std::vector<bool>& assignment) {
  std::vector<EntityId> dom = reduction.upper_cycle;
  for (int k = 0; k < reduction.formula.num_vars; ++k) {
    if (k + 1 < static_cast<int>(assignment.size()) && assignment[k + 1]) {
      for (EntityId w : reduction.w_nodes[k]) dom.push_back(w);
    } else if (reduction.wneg_nodes[k] != kInvalidEntity) {
      dom.push_back(reduction.wneg_nodes[k]);
    }
  }
  std::sort(dom.begin(), dom.end());
  return dom;
}

Result<std::vector<bool>> DominatorToAssignment(
    const ReductionOutput& reduction,
    const std::vector<EntityId>& dominator) {
  std::set<EntityId> dom(dominator.begin(), dominator.end());
  for (EntityId e : reduction.upper_cycle) {
    if (dom.count(e) == 0) {
      return Status::InvalidArgument(
          "dominator does not contain the whole upper cycle");
    }
  }
  for (EntityId e : reduction.lower_cycle) {
    if (dom.count(e) > 0) {
      return Status::InvalidArgument(
          "dominator contains a lower-cycle node");
    }
  }
  std::vector<bool> assignment(reduction.formula.num_vars + 1, false);
  for (int k = 0; k < reduction.formula.num_vars; ++k) {
    bool pos = false;
    for (EntityId w : reduction.w_nodes[k]) pos = pos || dom.count(w) > 0;
    bool neg = reduction.wneg_nodes[k] != kInvalidEntity &&
               dom.count(reduction.wneg_nodes[k]) > 0;
    if (pos && neg) {
      return Status::InvalidArgument(StrCat(
          "undesirable dominator: contains both w", k + 1, " and w'", k + 1));
    }
    assignment[k + 1] = pos;
  }
  return assignment;
}

}  // namespace dislock
