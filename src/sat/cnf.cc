#include "sat/cnf.h"

#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace dislock {

int Cnf::PositiveOccurrences(int var) const {
  int n = 0;
  for (const Clause& c : clauses) {
    for (const Literal& l : c) {
      if (l.var == var && !l.negated) ++n;
    }
  }
  return n;
}

int Cnf::NegativeOccurrences(int var) const {
  int n = 0;
  for (const Clause& c : clauses) {
    for (const Literal& l : c) {
      if (l.var == var && l.negated) ++n;
    }
  }
  return n;
}

bool Cnf::IsRestrictedForm(int max_len) const {
  for (const Clause& c : clauses) {
    if (static_cast<int>(c.size()) > max_len) return false;
  }
  for (int v = 1; v <= num_vars; ++v) {
    if (PositiveOccurrences(v) > 2 || NegativeOccurrences(v) > 1) {
      return false;
    }
  }
  return true;
}

bool Cnf::IsSatisfiedBy(const std::vector<bool>& assignment) const {
  DISLOCK_CHECK_GE(static_cast<int>(assignment.size()), num_vars + 1);
  for (const Clause& c : clauses) {
    bool sat = false;
    for (const Literal& l : c) {
      if (assignment[l.var] != l.negated) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

std::string Cnf::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) out << " ^ ";
    out << "(";
    for (size_t j = 0; j < clauses[i].size(); ++j) {
      if (j > 0) out << " v ";
      if (clauses[i][j].negated) out << "~";
      out << "x" << clauses[i][j].var;
    }
    out << ")";
  }
  return out.str();
}

std::string Cnf::ToDimacs() const {
  std::ostringstream out;
  out << "p cnf " << num_vars << " " << clauses.size() << "\n";
  for (const Clause& c : clauses) {
    for (const Literal& l : c) out << l.Encoded() << " ";
    out << "0\n";
  }
  return out.str();
}

Result<Cnf> ParseDimacs(const std::string& text) {
  Cnf cnf;
  bool saw_header = false;
  int expected_clauses = -1;
  Clause current;
  for (const std::string& raw_line : Split(text, '\n')) {
    std::string line = Trim(raw_line);
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      std::istringstream in(line);
      std::string p, fmt;
      in >> p >> fmt >> cnf.num_vars >> expected_clauses;
      if (fmt != "cnf" || in.fail()) {
        return Status::InvalidArgument("malformed DIMACS header: " + line);
      }
      saw_header = true;
      continue;
    }
    if (!saw_header) {
      return Status::InvalidArgument("clause before DIMACS header");
    }
    std::istringstream in(line);
    int code;
    while (in >> code) {
      if (code == 0) {
        cnf.clauses.push_back(current);
        current.clear();
      } else {
        if (code > cnf.num_vars || code < -cnf.num_vars) {
          return Status::InvalidArgument(
              StrCat("literal ", code, " out of range"));
        }
        current.push_back(Literal::FromEncoded(code));
      }
    }
  }
  if (!current.empty()) cnf.clauses.push_back(current);
  if (!saw_header) return Status::InvalidArgument("missing DIMACS header");
  if (expected_clauses >= 0 &&
      static_cast<int>(cnf.clauses.size()) != expected_clauses) {
    return Status::InvalidArgument(
        StrCat("header promises ", expected_clauses, " clauses, found ",
               cnf.clauses.size()));
  }
  return cnf;
}

Cnf MakeCnf(int num_vars, const std::vector<std::vector<int>>& clauses) {
  Cnf cnf;
  cnf.num_vars = num_vars;
  for (const auto& c : clauses) {
    Clause clause;
    for (int code : c) {
      DISLOCK_CHECK(code != 0 && code <= num_vars && code >= -num_vars);
      clause.push_back(Literal::FromEncoded(code));
    }
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

}  // namespace dislock
