#include "sat/solver.h"

namespace dislock {

namespace {

enum : int8_t { kUnset = 0, kTrue = 1, kFalse = 2 };

/// Small recursive DPLL engine over a scan-based clause view.
class Dpll {
 public:
  Dpll(const Cnf& cnf, int64_t max_decisions)
      : cnf_(cnf),
        assign_(cnf.num_vars + 1, kUnset),
        max_decisions_(max_decisions) {}

  Result<SatResult> Run() {
    SatResult result;
    bool sat = Search(&result);
    if (exhausted_) {
      return Status::ResourceExhausted("DPLL decision budget exhausted");
    }
    result.satisfiable = sat;
    if (sat) {
      result.assignment.assign(cnf_.num_vars + 1, false);
      for (int v = 1; v <= cnf_.num_vars; ++v) {
        result.assignment[v] = assign_[v] == kTrue;
      }
    }
    return result;
  }

 private:
  bool LiteralTrue(const Literal& l) const {
    return assign_[l.var] == (l.negated ? kFalse : kTrue);
  }
  bool LiteralFalse(const Literal& l) const {
    return assign_[l.var] == (l.negated ? kTrue : kFalse);
  }

  /// Unit propagation by scanning. Returns false on conflict; appends the
  /// variables it sets to `trail`.
  bool Propagate(std::vector<int>* trail, SatResult* stats) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Clause& c : cnf_.clauses) {
        int unset_count = 0;
        const Literal* unit = nullptr;
        bool satisfied = false;
        for (const Literal& l : c) {
          if (LiteralTrue(l)) {
            satisfied = true;
            break;
          }
          if (!LiteralFalse(l)) {
            ++unset_count;
            unit = &l;
          }
        }
        if (satisfied) continue;
        if (unset_count == 0) return false;  // conflict
        if (unset_count == 1) {
          assign_[unit->var] = unit->negated ? kFalse : kTrue;
          trail->push_back(unit->var);
          ++stats->propagations;
          changed = true;
        }
      }
    }
    return true;
  }

  bool Search(SatResult* stats) {
    std::vector<int> trail;
    if (!Propagate(&trail, stats)) {
      for (int v : trail) assign_[v] = kUnset;
      return false;
    }
    int branch_var = 0;
    for (int v = 1; v <= cnf_.num_vars; ++v) {
      if (assign_[v] == kUnset) {
        branch_var = v;
        break;
      }
    }
    if (branch_var == 0) return true;  // all assigned, no conflict
    if (++stats->decisions > max_decisions_) {
      exhausted_ = true;
      for (int v : trail) assign_[v] = kUnset;
      return false;
    }
    for (int8_t value : {kTrue, kFalse}) {
      assign_[branch_var] = value;
      if (Search(stats)) return true;
      if (exhausted_) break;
    }
    assign_[branch_var] = kUnset;
    for (int v : trail) assign_[v] = kUnset;
    return false;
  }

  const Cnf& cnf_;
  std::vector<int8_t> assign_;
  int64_t max_decisions_;
  bool exhausted_ = false;
};

}  // namespace

Result<SatResult> SolveSat(const Cnf& cnf, int64_t max_decisions) {
  // An empty clause is unsatisfiable regardless of variables.
  for (const Clause& c : cnf.clauses) {
    if (c.empty()) {
      SatResult result;
      result.satisfiable = false;
      return result;
    }
  }
  return Dpll(cnf, max_decisions).Run();
}

Result<std::vector<std::vector<bool>>> AllModels(const Cnf& cnf,
                                                 int64_t max_models) {
  if (cnf.num_vars > 24) {
    return Status::ResourceExhausted("AllModels limited to 24 variables");
  }
  std::vector<std::vector<bool>> models;
  std::vector<bool> assignment(cnf.num_vars + 1, false);
  const uint64_t total = uint64_t{1} << cnf.num_vars;
  for (uint64_t bits = 0; bits < total; ++bits) {
    for (int v = 1; v <= cnf.num_vars; ++v) {
      assignment[v] = (bits >> (v - 1)) & 1;
    }
    if (cnf.IsSatisfiedBy(assignment)) {
      models.push_back(assignment);
      if (static_cast<int64_t>(models.size()) > max_models) {
        return Status::ResourceExhausted("more models than max_models");
      }
    }
  }
  return models;
}

}  // namespace dislock
