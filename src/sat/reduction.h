#ifndef DISLOCK_SAT_REDUCTION_H_
#define DISLOCK_SAT_REDUCTION_H_

#include <memory>
#include <string>
#include <vector>

#include "sat/cnf.h"
#include "txn/system.h"
#include "util/status.h"

namespace dislock {

/// The Theorem 3 reduction: a restricted CNF formula F becomes a pair of
/// transactions {T1(F), T2(F)}, every entity on its own site, such that the
/// pair is UNSAFE iff F is satisfiable.
///
/// Structure of the conflict digraph D = D(T1(F), T2(F)) (Section 5):
///  (1) an upper directed cycle through u and one node c_ij per literal
///      occurrence (dummies between named nodes);
///  (2) a middle row: per variable k a node w_k (two mutually connected
///      copies when the variable occurs twice unnegated) and a node w'_k
///      for its negation, each a direct descendant of u;
///  (3) a lower directed cycle through v and nodes z_k, z'_k (dummies
///      between named nodes), with v a direct descendant of the middle row.
/// The transactions realize exactly these arcs (Definition 1), then the
/// completion adds the gadget precedences:
///  (a) Lz_k <1 Uw_k, Lz'_k <1 Uw'_k and Lw_k <2 Uz'_k, Lw'_k <2 Uz_k;
///  (b) if variable x_k is the j-th literal of clause i: Lw_k <1 Uc_ij and
///      Lc_{i,succ(j)} <2 Uw_k, using a distinct copy of w_k per
///      occurrence (succ = cyclic successor within the clause);
///  (c) as (b) with w'_k for negated literals.
/// Dominators of D = the upper cycle plus any subset of middle components,
/// i.e. truth assignments; the gadgets make a dominator's closure succeed
/// iff its assignment satisfies F.
struct ReductionOutput {
  std::shared_ptr<DistributedDatabase> db;
  std::shared_ptr<TransactionSystem> system;  ///< {T1(F), T2(F)}

  /// The formula that was encoded.
  Cnf formula;

  // Entity bookkeeping (ids into `db`).
  EntityId u = kInvalidEntity;
  EntityId v = kInvalidEntity;
  /// clause_nodes[i][j] = c_ij.
  std::vector<std::vector<EntityId>> clause_nodes;
  /// w_nodes[k] = copies of w_{k+1} (1 or 2 entries); empty if variable
  /// k+1 never occurs unnegated.
  std::vector<std::vector<EntityId>> w_nodes;
  /// wneg_nodes[k] = w'_{k+1}, or kInvalidEntity if never negated.
  std::vector<EntityId> wneg_nodes;
  /// z_nodes[k] = z_{k+1}; zneg_nodes[k] = z'_{k+1}.
  std::vector<EntityId> z_nodes;
  std::vector<EntityId> zneg_nodes;
  /// All upper-cycle entities in cycle order (u first), incl. dummies.
  std::vector<EntityId> upper_cycle;
  /// All lower-cycle entities in cycle order (v first), incl. dummies.
  std::vector<EntityId> lower_cycle;
};

/// Builds {T1(F), T2(F)}. `formula` must be in restricted form (checked):
/// clauses of 2 or 3 literals, each variable at most twice unnegated and at
/// most once negated.
Result<ReductionOutput> ReduceCnfToTransactions(const Cnf& formula);

/// Converts a truth assignment (assignment[v] for v in [1, num_vars]) to
/// the corresponding dominator of D: the upper cycle plus, per variable,
/// its w-copies when true or w' when false (only nodes that exist).
std::vector<EntityId> AssignmentToDominator(
    const ReductionOutput& reduction, const std::vector<bool>& assignment);

/// Reads a dominator back as an assignment. Fails with InvalidArgument if
/// the dominator is "undesirable": missing the upper cycle, containing both
/// w_k and w'_k, or containing a lower-cycle node.
Result<std::vector<bool>> DominatorToAssignment(
    const ReductionOutput& reduction, const std::vector<EntityId>& dominator);

}  // namespace dislock

#endif  // DISLOCK_SAT_REDUCTION_H_
