#ifndef DISLOCK_SAT_SOLVER_H_
#define DISLOCK_SAT_SOLVER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "sat/cnf.h"
#include "util/status.h"

namespace dislock {

/// Result of a satisfiability decision.
struct SatResult {
  bool satisfiable = false;
  /// When satisfiable: assignment[v] for v in [1, num_vars] (index 0
  /// unused).
  std::vector<bool> assignment;
  /// Search statistics.
  int64_t decisions = 0;
  int64_t propagations = 0;
};

/// A DPLL solver (unit propagation, pure-literal elimination, first-unset
/// branching). Built as the ground-truth oracle for validating the
/// Theorem 3 reduction — formulas there are small, so no CDCL machinery is
/// needed. `max_decisions` bounds the search (ResourceExhausted beyond it).
Result<SatResult> SolveSat(const Cnf& cnf, int64_t max_decisions = 1 << 24);

/// Enumerates all satisfying assignments (up to `max_models`).
Result<std::vector<std::vector<bool>>> AllModels(const Cnf& cnf,
                                                 int64_t max_models);

}  // namespace dislock

#endif  // DISLOCK_SAT_SOLVER_H_
