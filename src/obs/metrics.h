#ifndef DISLOCK_OBS_METRICS_H_
#define DISLOCK_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/stats_sink.h"

namespace dislock {
namespace obs {

// Thread-safe StatsSink backed by sorted maps.
//
// Counters accumulate across AddCounter calls (including concurrent calls
// from ThreadPool workers); gauges keep the last value set. ToJson()
// iterates the maps in key order, so the exported block is deterministic
// for a deterministic set of (name, value) pairs regardless of insertion
// or thread interleaving.
class MetricsRegistry final : public StatsSink {
 public:
  void AddCounter(std::string_view name, int64_t value) override;
  void SetGauge(std::string_view name, double value) override;

  // Returns the counter's current value, or 0 if never added to.
  int64_t CounterValue(std::string_view name) const;
  // Returns the gauge's current value, or 0.0 if never set.
  double GaugeValue(std::string_view name) const;

  // Snapshot copies, sorted by name.
  std::map<std::string, int64_t> Counters() const;
  std::map<std::string, double> Gauges() const;

  bool empty() const;
  void Clear();

  // Flat metrics block:
  //   {"schema_version": 1, "counters": {...}, "gauges": {...}}
  // Keys sorted; gauges formatted with %.6g.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
};

}  // namespace obs
}  // namespace dislock

#endif  // DISLOCK_OBS_METRICS_H_
