#ifndef DISLOCK_OBS_JSON_H_
#define DISLOCK_OBS_JSON_H_

#include <string>
#include <string_view>

namespace dislock {
namespace obs {

// Returns `s` wrapped in double quotes with JSON escaping applied
// (quote, backslash, control characters). The obs layer sits below core,
// so it carries its own escaper rather than reaching up to core/report.h.
std::string JsonQuote(std::string_view s);

// Minimal JSON validator: accepts exactly the RFC 8259 grammar (objects,
// arrays, strings, numbers, true/false/null) with arbitrary nesting.
// Used by tests and the CI trace smoke step to check that every exporter
// in the repo emits well-formed JSON; not a parser — nothing is built.
// On failure returns false and, when `error` is non-null, stores a short
// description with a byte offset.
bool IsValidJson(std::string_view text, std::string* error = nullptr);

}  // namespace obs
}  // namespace dislock

#endif  // DISLOCK_OBS_JSON_H_
