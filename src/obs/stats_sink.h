#ifndef DISLOCK_OBS_STATS_SINK_H_
#define DISLOCK_OBS_STATS_SINK_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace dislock {
namespace obs {

// The one interface every stats producer in the engine speaks.
//
// The engine historically grew four ad-hoc stats structs (PipelineStats,
// the verdict-cache Stats, DeltaStats, and the pass-manager diagnostic
// counts). Each keeps its typed struct — those are part of the report
// surface and serialize deterministically — but they all additionally
// know how to pour themselves into a StatsSink (see core/stats_export.h
// and analysis/emit.h), so a tool that wants "all the numbers" asks one
// interface instead of four structs.
//
// Names are stable dotted paths ("pipeline.theorem1-scc.attempts",
// "cache.hits"); the taxonomy lives in docs/observability.md and the
// constants in core/wire_keys.h.
class StatsSink {
 public:
  virtual ~StatsSink() = default;

  // Adds `value` to the counter `name`. Counters are summable: concurrent
  // or repeated adds accumulate.
  virtual void AddCounter(std::string_view name, int64_t value) = 0;

  // Sets the gauge `name` to `value`. Last write wins.
  virtual void SetGauge(std::string_view name, double value) = 0;
};

// Decorator that prepends "<prefix>." to every metric name before
// forwarding. Lets a caller namespace a component's stats (e.g. pour two
// reports into one registry under "multi." and "incremental.") without
// the component knowing.
class PrefixedSink final : public StatsSink {
 public:
  PrefixedSink(std::string_view prefix, StatsSink* wrapped)
      : prefix_(std::string(prefix) + "."), wrapped_(wrapped) {}

  void AddCounter(std::string_view name, int64_t value) override {
    wrapped_->AddCounter(prefix_ + std::string(name), value);
  }
  void SetGauge(std::string_view name, double value) override {
    wrapped_->SetGauge(prefix_ + std::string(name), value);
  }

 private:
  std::string prefix_;
  StatsSink* wrapped_;
};

}  // namespace obs
}  // namespace dislock

#endif  // DISLOCK_OBS_STATS_SINK_H_
