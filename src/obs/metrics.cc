#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

#include "obs/json.h"

namespace dislock {
namespace obs {

void MetricsRegistry::AddCounter(std::string_view name, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), value);
  } else {
    it->second += value;
  }
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

int64_t MetricsRegistry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::GaugeValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

std::map<std::string, int64_t> MetricsRegistry::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {counters_.begin(), counters_.end()};
}

std::map<std::string, double> MetricsRegistry::Gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {gauges_.begin(), gauges_.end()};
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty() && gauges_.empty();
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"schema_version\": 1,\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + JsonQuote(name) + ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    char buf[64];
    // JSON has no inf/nan tokens; clamp non-finite values to 0.
    std::snprintf(buf, sizeof buf, "%.6g", std::isfinite(value) ? value : 0.0);
    out += "    " + JsonQuote(name) + ": " + buf;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace obs
}  // namespace dislock
