#ifndef DISLOCK_OBS_OBSERVABILITY_H_
#define DISLOCK_OBS_OBSERVABILITY_H_

#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dislock {
namespace obs {

// Tool-side bundle: owns the TraceRecorder / MetricsRegistry a run opted
// into and knows where to flush them. Both pointers are null unless the
// matching flag was given, so `bundle.trace()`/`bundle.metrics()` plug
// straight into EngineConfig and the no-op span path.
class Observability {
 public:
  Observability() = default;

  // `trace_path`: when non-empty, allocates a recorder; Flush() writes the
  // Chrome trace JSON there. `metrics_requested`: when true, allocates a
  // registry; Flush() writes the metrics JSON to `metrics_path`, or to
  // stderr when the path is empty or "-".
  Observability(std::string trace_path, bool metrics_requested,
                std::string metrics_path);

  TraceRecorder* trace() const { return trace_.get(); }
  MetricsRegistry* metrics() const { return metrics_.get(); }
  bool enabled() const { return trace_ || metrics_; }

  // Writes whatever was requested. Returns false (with a message in
  // `*error`) if a file cannot be written; a run's report has already
  // been emitted by then, so callers surface the error without changing
  // their exit status logic for the analysis itself.
  bool Flush(std::string* error) const;

 private:
  std::unique_ptr<TraceRecorder> trace_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::string trace_path_;
  std::string metrics_path_;
};

}  // namespace obs
}  // namespace dislock

#endif  // DISLOCK_OBS_OBSERVABILITY_H_
