#include "obs/json.h"

#include <cctype>
#include <cstdio>

namespace dislock {
namespace obs {

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

// Recursive-descent validator over a string_view cursor.
class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  bool Run(std::string* error) {
    SkipSpace();
    if (!Value()) {
      Describe(error);
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      fail_ = "trailing bytes after top-level value";
      Describe(error);
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 256;

  void Describe(std::string* error) const {
    if (error == nullptr) return;
    *error = fail_.empty() ? "malformed JSON" : fail_;
    *error += " at byte " + std::to_string(pos_);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipSpace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos_;
    }
  }

  bool Fail(const char* what) {
    if (fail_.empty()) fail_ = what;
    return false;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return Fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool String() {
    if (AtEnd() || Peek() != '"') return Fail("expected string");
    ++pos_;
    while (!AtEnd()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (AtEnd()) return Fail("truncated escape");
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return Fail("bad \\u escape");
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return Fail("bad escape character");
        }
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool Digits() {
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Fail("expected digit");
    }
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    return true;
  }

  bool Number() {
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd()) return Fail("truncated number");
    if (Peek() == '0') {
      ++pos_;
    } else if (!Digits()) {
      return false;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (!Digits()) return false;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (!Digits()) return false;
    }
    return true;
  }

  bool Object() {
    ++pos_;  // consume '{'
    SkipSpace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (AtEnd() || Peek() != ':') return Fail("expected ':' in object");
      ++pos_;
      if (!Value()) return false;
      SkipSpace();
      if (AtEnd()) return Fail("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool Array() {
    ++pos_;  // consume '['
    SkipSpace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!Value()) return false;
      SkipSpace();
      if (AtEnd()) return Fail("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool Value() {
    if (++depth_ > kMaxDepth) return Fail("nesting too deep");
    SkipSpace();
    if (AtEnd()) return Fail("unexpected end of input");
    bool ok = false;
    switch (Peek()) {
      case '{':
        ok = Object();
        break;
      case '[':
        ok = Array();
        break;
      case '"':
        ok = String();
        break;
      case 't':
        ok = Literal("true");
        break;
      case 'f':
        ok = Literal("false");
        break;
      case 'n':
        ok = Literal("null");
        break;
      default:
        ok = Number();
    }
    --depth_;
    return ok;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string fail_;
};

}  // namespace

bool IsValidJson(std::string_view text, std::string* error) {
  return Validator(text).Run(error);
}

}  // namespace obs
}  // namespace dislock
