#include "obs/trace.h"

#include "obs/json.h"

namespace dislock {
namespace obs {

namespace {
// Nesting depth of open TraceSpans on this thread. Depth is a per-thread
// notion (a worker's task span is a root even while the submitting
// thread has spans open), so a plain thread_local counter is exact.
thread_local int g_span_depth = 0;
}  // namespace

TraceRecorder::TraceRecorder() : epoch_(Now()) {}

int TraceRecorder::TidLocked(std::thread::id id) {
  auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  int tid = static_cast<int>(tids_.size());
  tids_.emplace(id, tid);
  return tid;
}

void TraceRecorder::Record(const char* name, int depth,
                           std::chrono::steady_clock::time_point start,
                           std::chrono::steady_clock::time_point end) {
  TraceEvent ev;
  ev.name = name;
  ev.depth = depth;
  ev.start_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(start - epoch_)
          .count());
  ev.dur_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count());
  std::lock_guard<std::mutex> lock(mu_);
  ev.tid = TidLocked(std::this_thread::get_id());
  events_.push_back(ev);
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string TraceRecorder::ToChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out =
      "{\n  \"schema_version\": 1,\n  \"displayTimeUnit\": \"ms\",\n"
      "  \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& ev : events_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": " + JsonQuote(ev.name) +
           ", \"cat\": \"dislock\", \"ph\": \"X\", \"pid\": 1, \"tid\": " +
           std::to_string(ev.tid) + ", \"ts\": " + std::to_string(ev.start_us) +
           ", \"dur\": " + std::to_string(ev.dur_us) +
           ", \"args\": {\"depth\": " + std::to_string(ev.depth) + "}}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

TraceSpan::TraceSpan(TraceRecorder* recorder, const char* name)
    : recorder_(recorder), name_(name) {
  if (recorder_ == nullptr) return;
  depth_ = g_span_depth++;
  start_ = TraceRecorder::Now();
}

TraceSpan::~TraceSpan() {
  if (recorder_ == nullptr) return;
  --g_span_depth;
  recorder_->Record(name_, depth_, start_, TraceRecorder::Now());
}

}  // namespace obs
}  // namespace dislock
