#ifndef DISLOCK_OBS_TRACE_H_
#define DISLOCK_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dislock {
namespace obs {

// One completed span. `name` must point at storage that outlives the
// recorder — in practice every span name in the engine is a string
// literal from the taxonomy in core/wire_keys.h (docs/observability.md
// lists them all), so the recorder stores the pointer, not a copy.
struct TraceEvent {
  const char* name = "";
  int tid = 0;            // recorder-local thread id, in registration order
  int depth = 0;          // span nesting depth on that thread at entry
  uint64_t start_us = 0;  // microseconds since the recorder's epoch
  uint64_t dur_us = 0;
};

// Structured tracing: RAII TraceSpans record (thread id, nesting depth,
// monotonic start, duration) into a thread-safe buffer that exports as
// Chrome trace_event JSON — load the file in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
//
// Tracing is compiled in but off by default: instrumentation sites hold a
// TraceRecorder* that is null unless a caller opted in (--trace=FILE in
// the tools), and a TraceSpan over a null recorder does nothing. The
// engine-wide invariant is that enabling tracing never changes a report
// byte — timing lives only in the trace/metrics files, mirroring the
// wall_ms rule ("measured; never serialized") in core/decision/stats.h.
class TraceRecorder {
 public:
  TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Records a completed span. `start`/`end` come from Now(); depth is the
  // caller's nesting depth at span entry. The calling thread is
  // registered on first use. Thread-safe.
  void Record(const char* name, int depth,
              std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end);

  static std::chrono::steady_clock::time_point Now() {
    return std::chrono::steady_clock::now();
  }

  // Snapshot of everything recorded so far.
  std::vector<TraceEvent> Events() const;
  size_t size() const;

  // Exports the Chrome trace_event JSON document:
  //   {"schema_version": 1, "displayTimeUnit": "ms",
  //    "traceEvents": [{"name": ..., "cat": "dislock", "ph": "X",
  //                     "pid": 1, "tid": ..., "ts": ..., "dur": ...,
  //                     "args": {"depth": ...}}, ...]}
  // Complete ("X") events only; `ts`/`dur` are integer microseconds
  // relative to the recorder's construction. Both viewers ignore the
  // unknown schema_version key.
  std::string ToChromeTraceJson() const;

 private:
  int TidLocked(std::thread::id id);

  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<std::thread::id, int> tids_;
};

// RAII span: measures from construction to destruction and records into
// `recorder` (no-op when null). Maintains a per-thread nesting depth so
// child spans opened on the same thread report depth parent+1.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  const char* name_;
  int depth_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace dislock

#endif  // DISLOCK_OBS_TRACE_H_
