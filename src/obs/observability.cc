#include "obs/observability.h"

#include <cstdio>
#include <fstream>
#include <utility>

namespace dislock {
namespace obs {

Observability::Observability(std::string trace_path, bool metrics_requested,
                             std::string metrics_path)
    : trace_path_(std::move(trace_path)), metrics_path_(std::move(metrics_path)) {
  if (!trace_path_.empty()) trace_ = std::make_unique<TraceRecorder>();
  if (metrics_requested) metrics_ = std::make_unique<MetricsRegistry>();
}

namespace {
bool WriteFile(const std::string& path, const std::string& body,
               std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << body;
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "error writing " + path;
    return false;
  }
  return true;
}
}  // namespace

bool Observability::Flush(std::string* error) const {
  if (trace_ != nullptr &&
      !WriteFile(trace_path_, trace_->ToChromeTraceJson(), error)) {
    return false;
  }
  if (metrics_ != nullptr) {
    const std::string body = metrics_->ToJson();
    if (metrics_path_.empty() || metrics_path_ == "-") {
      std::fputs(body.c_str(), stderr);
    } else if (!WriteFile(metrics_path_, body, error)) {
      return false;
    }
  }
  return true;
}

}  // namespace obs
}  // namespace dislock
