#include "txn/transaction.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace dislock {

Transaction::Transaction(const DistributedDatabase* db, std::string name)
    : db_(db), name_(std::move(name)) {
  DISLOCK_CHECK(db != nullptr);
  lock_step_.assign(db->NumEntities(), kInvalidStep);
  unlock_step_.assign(db->NumEntities(), kInvalidStep);
  lock_count_.assign(db->NumEntities(), 0);
  unlock_count_.assign(db->NumEntities(), 0);
}

StepId Transaction::AddStep(StepKind kind, EntityId entity, bool shared) {
  DISLOCK_CHECK(db_->ValidEntity(entity));
  StepId id = static_cast<StepId>(steps_.size());
  steps_.push_back({kind, entity, kind != StepKind::kUpdate && shared});
  order_.AddNode();
  // The database may have grown since construction.
  if (entity >= static_cast<EntityId>(lock_step_.size())) {
    lock_step_.resize(db_->NumEntities(), kInvalidStep);
    unlock_step_.resize(db_->NumEntities(), kInvalidStep);
    lock_count_.resize(db_->NumEntities(), 0);
    unlock_count_.resize(db_->NumEntities(), 0);
  }
  if (kind == StepKind::kLock) {
    if (lock_step_[entity] == kInvalidStep) lock_step_[entity] = id;
    ++lock_count_[entity];
  } else if (kind == StepKind::kUnlock) {
    if (unlock_step_[entity] == kInvalidStep) unlock_step_[entity] = id;
    ++unlock_count_[entity];
  }
  reach_.reset();
  return id;
}

void Transaction::AddPrecedence(StepId before, StepId after) {
  DISLOCK_CHECK(ValidStep(before) && ValidStep(after));
  if (order_.HasArc(before, after)) return;
  order_.AddArc(before, after);
  reach_.reset();
}

const Reachability& Transaction::Reach() const {
  if (!reach_) reach_ = std::make_shared<const Reachability>(order_);
  return *reach_;
}

bool Transaction::Precedes(StepId a, StepId b) const {
  DISLOCK_CHECK(ValidStep(a) && ValidStep(b));
  return a != b && Reach().Reaches(a, b);
}

bool Transaction::PrecedesOrEqual(StepId a, StepId b) const {
  DISLOCK_CHECK(ValidStep(a) && ValidStep(b));
  return Reach().Reaches(a, b);
}

bool Transaction::Concurrent(StepId a, StepId b) const {
  DISLOCK_CHECK(ValidStep(a) && ValidStep(b));
  return Reach().Concurrent(a, b);
}

bool Transaction::IsSharedSection(EntityId e) const {
  StepId l = LockStep(e);
  return l != kInvalidStep && steps_[l].shared;
}

StepId Transaction::LockStep(EntityId e) const {
  DISLOCK_CHECK(db_->ValidEntity(e));
  return e < static_cast<EntityId>(lock_step_.size()) ? lock_step_[e]
                                                      : kInvalidStep;
}

StepId Transaction::UnlockStep(EntityId e) const {
  DISLOCK_CHECK(db_->ValidEntity(e));
  return e < static_cast<EntityId>(unlock_step_.size()) ? unlock_step_[e]
                                                        : kInvalidStep;
}

std::vector<StepId> Transaction::UpdateSteps(EntityId e) const {
  std::vector<StepId> out;
  for (StepId s = 0; s < NumSteps(); ++s) {
    if (steps_[s].kind == StepKind::kUpdate && steps_[s].entity == e) {
      out.push_back(s);
    }
  }
  return out;
}

std::vector<EntityId> Transaction::LockedEntities() const {
  std::vector<EntityId> out;
  for (EntityId e = 0; e < static_cast<EntityId>(lock_step_.size()); ++e) {
    if (lock_step_[e] != kInvalidStep && unlock_step_[e] != kInvalidStep) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<EntityId> Transaction::TouchedEntities() const {
  std::set<EntityId> seen;
  for (const Step& s : steps_) seen.insert(s.entity);
  return {seen.begin(), seen.end()};
}

int Transaction::LockCount(EntityId e) const {
  DISLOCK_CHECK(db_->ValidEntity(e));
  return e < static_cast<EntityId>(lock_count_.size()) ? lock_count_[e] : 0;
}

int Transaction::UnlockCount(EntityId e) const {
  DISLOCK_CHECK(db_->ValidEntity(e));
  return e < static_cast<EntityId>(unlock_count_.size()) ? unlock_count_[e]
                                                         : 0;
}

std::string Transaction::ToString() const {
  std::ostringstream out;
  out << "Transaction " << name_ << " (" << NumSteps() << " steps)\n";
  for (SiteId site = 0; site < db_->NumSites(); ++site) {
    std::vector<StepId> here;
    for (StepId s = 0; s < NumSteps(); ++s) {
      if (SiteOfStep(s) == site) here.push_back(s);
    }
    if (here.empty()) continue;
    out << "  site " << site << ":";
    for (StepId s : here) out << " " << StepString(s) << "#" << s;
    out << "\n";
  }
  out << "  arcs:";
  for (StepId s = 0; s < NumSteps(); ++s) {
    for (NodeId t : order_.OutNeighbors(s)) {
      out << " " << StepString(s) << "#" << s << "->" << StepString(t) << "#"
          << t;
    }
  }
  out << "\n";
  return out.str();
}

}  // namespace dislock
