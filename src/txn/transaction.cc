#include "txn/transaction.h"

#include <algorithm>
#include <sstream>

namespace dislock {

namespace {

/// Inserts `value` into the sorted vector `sorted` if not already present.
template <typename T>
void InsertSortedUnique(std::vector<T>* sorted, T value) {
  auto it = std::lower_bound(sorted->begin(), sorted->end(), value);
  if (it == sorted->end() || *it != value) sorted->insert(it, value);
}

}  // namespace

Transaction::Transaction(const DistributedDatabase* db, std::string name)
    : db_(db), name_(std::move(name)) {
  DISLOCK_CHECK(db != nullptr);
  lock_step_.assign(db->NumEntities(), kInvalidStep);
  unlock_step_.assign(db->NumEntities(), kInvalidStep);
  lock_count_.assign(db->NumEntities(), 0);
  unlock_count_.assign(db->NumEntities(), 0);
}

Transaction::Transaction(const Transaction& other)
    : db_(other.db_),
      name_(other.name_),
      steps_(other.steps_),
      order_(other.order_),
      lock_step_(other.lock_step_),
      unlock_step_(other.unlock_step_),
      lock_count_(other.lock_count_),
      unlock_count_(other.unlock_count_),
      locked_entities_(other.locked_entities_),
      touched_entities_(other.touched_entities_),
      touched_sites_(other.touched_sites_) {
  // Share the immutable reachability cache if the source has built one.
  std::lock_guard<std::mutex> lock(other.reach_mu_);
  reach_ = other.reach_;
  reach_fast_.store(reach_.get(), std::memory_order_release);
}

Transaction& Transaction::operator=(const Transaction& other) {
  if (this == &other) return *this;
  db_ = other.db_;
  name_ = other.name_;
  steps_ = other.steps_;
  order_ = other.order_;
  lock_step_ = other.lock_step_;
  unlock_step_ = other.unlock_step_;
  lock_count_ = other.lock_count_;
  unlock_count_ = other.unlock_count_;
  locked_entities_ = other.locked_entities_;
  touched_entities_ = other.touched_entities_;
  touched_sites_ = other.touched_sites_;
  std::shared_ptr<const Reachability> reach;
  {
    std::lock_guard<std::mutex> lock(other.reach_mu_);
    reach = other.reach_;
  }
  std::lock_guard<std::mutex> lock(reach_mu_);
  reach_ = std::move(reach);
  reach_fast_.store(reach_.get(), std::memory_order_release);
  return *this;
}

Transaction::Transaction(Transaction&& other) noexcept
    : db_(other.db_),
      name_(std::move(other.name_)),
      steps_(std::move(other.steps_)),
      order_(std::move(other.order_)),
      lock_step_(std::move(other.lock_step_)),
      unlock_step_(std::move(other.unlock_step_)),
      lock_count_(std::move(other.lock_count_)),
      unlock_count_(std::move(other.unlock_count_)),
      locked_entities_(std::move(other.locked_entities_)),
      touched_entities_(std::move(other.touched_entities_)),
      touched_sites_(std::move(other.touched_sites_)),
      reach_(std::move(other.reach_)) {
  reach_fast_.store(reach_.get(), std::memory_order_release);
  other.reach_fast_.store(nullptr, std::memory_order_release);
}

Transaction& Transaction::operator=(Transaction&& other) noexcept {
  if (this == &other) return *this;
  db_ = other.db_;
  name_ = std::move(other.name_);
  steps_ = std::move(other.steps_);
  order_ = std::move(other.order_);
  lock_step_ = std::move(other.lock_step_);
  unlock_step_ = std::move(other.unlock_step_);
  lock_count_ = std::move(other.lock_count_);
  unlock_count_ = std::move(other.unlock_count_);
  locked_entities_ = std::move(other.locked_entities_);
  touched_entities_ = std::move(other.touched_entities_);
  touched_sites_ = std::move(other.touched_sites_);
  reach_ = std::move(other.reach_);
  reach_fast_.store(reach_.get(), std::memory_order_release);
  other.reach_fast_.store(nullptr, std::memory_order_release);
  return *this;
}

StepId Transaction::AddStep(StepKind kind, EntityId entity, bool shared) {
  DISLOCK_CHECK(db_->ValidEntity(entity));
  StepId id = static_cast<StepId>(steps_.size());
  steps_.push_back({kind, entity, kind != StepKind::kUpdate && shared});
  order_.AddNode();
  // The database may have grown since construction.
  if (entity >= static_cast<EntityId>(lock_step_.size())) {
    lock_step_.resize(db_->NumEntities(), kInvalidStep);
    unlock_step_.resize(db_->NumEntities(), kInvalidStep);
    lock_count_.resize(db_->NumEntities(), 0);
    unlock_count_.resize(db_->NumEntities(), 0);
  }
  if (kind == StepKind::kLock) {
    if (lock_step_[entity] == kInvalidStep) lock_step_[entity] = id;
    ++lock_count_[entity];
  } else if (kind == StepKind::kUnlock) {
    if (unlock_step_[entity] == kInvalidStep) unlock_step_[entity] = id;
    ++unlock_count_[entity];
  }
  InsertSortedUnique(&touched_entities_, entity);
  InsertSortedUnique(&touched_sites_, db_->SiteOf(entity));
  if (lock_step_[entity] != kInvalidStep &&
      unlock_step_[entity] != kInvalidStep) {
    InsertSortedUnique(&locked_entities_, entity);
  }
  InvalidateReach();
  return id;
}

void Transaction::AddPrecedence(StepId before, StepId after) {
  DISLOCK_CHECK(ValidStep(before) && ValidStep(after));
  if (order_.HasArc(before, after)) return;
  order_.AddArc(before, after);
  InvalidateReach();
}

void Transaction::InvalidateReach() {
  std::lock_guard<std::mutex> lock(reach_mu_);
  reach_fast_.store(nullptr, std::memory_order_release);
  reach_.reset();
}

const Reachability& Transaction::Reach() const {
  const Reachability* fast = reach_fast_.load(std::memory_order_acquire);
  if (fast != nullptr) return *fast;
  std::lock_guard<std::mutex> lock(reach_mu_);
  if (!reach_) reach_ = std::make_shared<const Reachability>(order_);
  reach_fast_.store(reach_.get(), std::memory_order_release);
  return *reach_;
}

bool Transaction::Precedes(StepId a, StepId b) const {
  DISLOCK_CHECK(ValidStep(a) && ValidStep(b));
  return a != b && Reach().Reaches(a, b);
}

bool Transaction::PrecedesOrEqual(StepId a, StepId b) const {
  DISLOCK_CHECK(ValidStep(a) && ValidStep(b));
  return Reach().Reaches(a, b);
}

bool Transaction::Concurrent(StepId a, StepId b) const {
  DISLOCK_CHECK(ValidStep(a) && ValidStep(b));
  return Reach().Concurrent(a, b);
}

bool Transaction::IsSharedSection(EntityId e) const {
  StepId l = LockStep(e);
  return l != kInvalidStep && steps_[l].shared;
}

StepId Transaction::LockStep(EntityId e) const {
  DISLOCK_CHECK(db_->ValidEntity(e));
  return e < static_cast<EntityId>(lock_step_.size()) ? lock_step_[e]
                                                      : kInvalidStep;
}

StepId Transaction::UnlockStep(EntityId e) const {
  DISLOCK_CHECK(db_->ValidEntity(e));
  return e < static_cast<EntityId>(unlock_step_.size()) ? unlock_step_[e]
                                                        : kInvalidStep;
}

std::vector<StepId> Transaction::UpdateSteps(EntityId e) const {
  std::vector<StepId> out;
  for (StepId s = 0; s < NumSteps(); ++s) {
    if (steps_[s].kind == StepKind::kUpdate && steps_[s].entity == e) {
      out.push_back(s);
    }
  }
  return out;
}

int Transaction::LockCount(EntityId e) const {
  DISLOCK_CHECK(db_->ValidEntity(e));
  return e < static_cast<EntityId>(lock_count_.size()) ? lock_count_[e] : 0;
}

int Transaction::UnlockCount(EntityId e) const {
  DISLOCK_CHECK(db_->ValidEntity(e));
  return e < static_cast<EntityId>(unlock_count_.size()) ? unlock_count_[e]
                                                         : 0;
}

std::string Transaction::ToString() const {
  std::ostringstream out;
  out << "Transaction " << name_ << " (" << NumSteps() << " steps)\n";
  for (SiteId site = 0; site < db_->NumSites(); ++site) {
    std::vector<StepId> here;
    for (StepId s = 0; s < NumSteps(); ++s) {
      if (SiteOfStep(s) == site) here.push_back(s);
    }
    if (here.empty()) continue;
    out << "  site " << site << ":";
    for (StepId s : here) out << " " << StepString(s) << "#" << s;
    out << "\n";
  }
  out << "  arcs:";
  for (StepId s = 0; s < NumSteps(); ++s) {
    for (NodeId t : order_.OutNeighbors(s)) {
      out << " " << StepString(s) << "#" << s << "->" << StepString(t) << "#"
          << t;
    }
  }
  out << "\n";
  return out.str();
}

}  // namespace dislock
