#ifndef DISLOCK_TXN_SYSTEM_H_
#define DISLOCK_TXN_SYSTEM_H_

#include <string>
#include <vector>

#include "txn/transaction.h"
#include "txn/validate.h"

namespace dislock {

/// A set of locked transactions T = {T1, ..., Tk} over one distributed
/// database. The safety question (are all schedules serializable?) is asked
/// of a TransactionSystem.
class TransactionSystem {
 public:
  /// Creates an empty system over `db`; `db` must outlive the system.
  explicit TransactionSystem(const DistributedDatabase* db) : db_(db) {
    DISLOCK_CHECK(db != nullptr);
  }

  /// Adds a transaction (copied). Must be over the same database object.
  void Add(Transaction txn) {
    DISLOCK_CHECK_EQ(&txn.db(), db_);
    txns_.push_back(std::move(txn));
  }

  int NumTransactions() const { return static_cast<int>(txns_.size()); }
  const Transaction& txn(int i) const {
    DISLOCK_CHECK(i >= 0 && i < NumTransactions());
    return txns_[i];
  }
  Transaction* mutable_txn(int i) {
    DISLOCK_CHECK(i >= 0 && i < NumTransactions());
    return &txns_[i];
  }
  const DistributedDatabase& db() const { return *db_; }

  /// Total number of steps across all transactions (the "n" of the paper's
  /// complexity statements).
  int TotalSteps() const {
    int n = 0;
    for (const auto& t : txns_) n += t.NumSteps();
    return n;
  }

  /// Validates every transaction.
  Status Validate(const ValidateOptions& options = ValidateOptions()) const {
    for (const auto& t : txns_) {
      DISLOCK_RETURN_NOT_OK(ValidateTransaction(t, options));
    }
    return Status::OK();
  }

  /// Multi-line dump of all transactions.
  std::string ToString() const {
    std::string out;
    for (const auto& t : txns_) out += t.ToString();
    return out;
  }

 private:
  const DistributedDatabase* db_;
  std::vector<Transaction> txns_;
};

}  // namespace dislock

#endif  // DISLOCK_TXN_SYSTEM_H_
