#ifndef DISLOCK_TXN_SYSTEM_H_
#define DISLOCK_TXN_SYSTEM_H_

#include <string>
#include <utility>
#include <vector>

#include "txn/transaction.h"
#include "txn/validate.h"

namespace dislock {

/// A borrowed, index-dense view of a set of transactions over one database:
/// the common currency of the analysis layer. Both the immutable
/// TransactionSystem (batch container) and a CatalogSnapshot
/// (txn/catalog.h) produce one, so every decision procedure is written once
/// against this view. Holds raw pointers; the producer must outlive it.
class SystemView {
 public:
  SystemView(const DistributedDatabase* db,
             std::vector<const Transaction*> txns)
      : db_(db), txns_(std::move(txns)) {
    DISLOCK_CHECK(db != nullptr);
  }

  int NumTransactions() const { return static_cast<int>(txns_.size()); }
  const Transaction& txn(int i) const {
    DISLOCK_CHECK(i >= 0 && i < NumTransactions());
    return *txns_[static_cast<size_t>(i)];
  }
  const DistributedDatabase& db() const { return *db_; }

  /// Total number of steps across all transactions (the "n" of the paper's
  /// complexity statements).
  int TotalSteps() const {
    int n = 0;
    for (const Transaction* t : txns_) n += t->NumSteps();
    return n;
  }

 private:
  const DistributedDatabase* db_;
  std::vector<const Transaction*> txns_;
};

/// A set of locked transactions T = {T1, ..., Tk} over one distributed
/// database. The safety question (are all schedules serializable?) is asked
/// of a TransactionSystem.
///
/// This is the immutable batch container; for add/remove/replace workloads
/// use the versioned TransactionCatalog (txn/catalog.h), whose snapshots
/// the same analyses accept.
class TransactionSystem {
 public:
  /// Creates an empty system over `db`; `db` must outlive the system.
  explicit TransactionSystem(const DistributedDatabase* db) : db_(db) {
    DISLOCK_CHECK(db != nullptr);
  }

  /// Adds a transaction (copied). Must be over the same database object.
  /// Rejects a transaction whose name is already present — two transactions
  /// named "T1" would make every diagnostic referring to "T1" ambiguous —
  /// with InvalidModel; on error the system is unchanged.
  Status Add(Transaction txn) {
    DISLOCK_CHECK_EQ(&txn.db(), db_);
    for (const auto& t : txns_) {
      if (t.name() == txn.name()) {
        return Status::InvalidModel("duplicate transaction name '" +
                                    txn.name() + "'");
      }
    }
    txns_.push_back(std::move(txn));
    return Status::OK();
  }

  int NumTransactions() const { return static_cast<int>(txns_.size()); }
  const Transaction& txn(int i) const {
    DISLOCK_CHECK(i >= 0 && i < NumTransactions());
    return txns_[i];
  }
  Transaction* mutable_txn(int i) {
    DISLOCK_CHECK(i >= 0 && i < NumTransactions());
    return &txns_[i];
  }
  const DistributedDatabase& db() const { return *db_; }

  /// A borrowed dense view over this system's transactions, in index
  /// order. Valid while the system is neither destroyed nor mutated.
  SystemView View() const {
    std::vector<const Transaction*> ptrs;
    ptrs.reserve(txns_.size());
    for (const auto& t : txns_) ptrs.push_back(&t);
    return SystemView(db_, std::move(ptrs));
  }

  /// Total number of steps across all transactions (the "n" of the paper's
  /// complexity statements).
  int TotalSteps() const {
    int n = 0;
    for (const auto& t : txns_) n += t.NumSteps();
    return n;
  }

  /// Validates every transaction.
  Status Validate(const ValidateOptions& options = ValidateOptions()) const {
    for (const auto& t : txns_) {
      DISLOCK_RETURN_NOT_OK(ValidateTransaction(t, options));
    }
    return Status::OK();
  }

  /// Multi-line dump of all transactions.
  std::string ToString() const {
    std::string out;
    for (const auto& t : txns_) out += t.ToString();
    return out;
  }

 private:
  const DistributedDatabase* db_;
  std::vector<Transaction> txns_;
};

/// Two-transaction scratch system for certificate verification and
/// rendering. Unlike TransactionSystem::Add this cannot fail: when the two
/// transactions share a name (legal for raw pairs handed straight to
/// AnalyzePairSafety, which never went through a container), the second is
/// disambiguated with a prime suffix so schedule renderings stay readable.
inline TransactionSystem MakePairSystem(const Transaction& t1,
                                        const Transaction& t2) {
  TransactionSystem pair(&t1.db());
  DISLOCK_CHECK(pair.Add(t1).ok());
  if (t1.name() == t2.name()) {
    Transaction renamed = t2;
    renamed.set_name(t2.name() + "'");
    DISLOCK_CHECK(pair.Add(std::move(renamed)).ok());
  } else {
    DISLOCK_CHECK(pair.Add(t2).ok());
  }
  return pair;
}

}  // namespace dislock

#endif  // DISLOCK_TXN_SYSTEM_H_
