#ifndef DISLOCK_TXN_DATABASE_H_
#define DISLOCK_TXN_DATABASE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace dislock {

/// Dense index of an entity (a lockable granule of data) in a
/// DistributedDatabase.
using EntityId = int32_t;
/// Dense index of a site. Sites are numbered [0, NumSites()).
using SiteId = int32_t;

constexpr EntityId kInvalidEntity = -1;

/// A distributed database D = (E, m, sigma) as defined in Section 2 of the
/// paper: a set of entities E, a number of sites m, and a stored-at function
/// sigma assigning each entity to one site.
///
/// Data redundancy (replication) is deliberately not modeled, exactly as in
/// the paper: a copy relationship between entities at different sites is an
/// integrity constraint handled at transaction-design time.
class DistributedDatabase {
 public:
  /// Creates a database with `num_sites` sites and no entities.
  explicit DistributedDatabase(int num_sites = 1);

  /// Adds an entity stored at `site`. Names must be unique and non-empty.
  Result<EntityId> AddEntity(const std::string& name, SiteId site);

  /// Convenience for tests/examples: adds an entity, aborting on error.
  EntityId MustAddEntity(const std::string& name, SiteId site);

  /// Site of an entity (the stored-at function sigma).
  SiteId SiteOf(EntityId e) const;

  /// Name of an entity.
  const std::string& NameOf(EntityId e) const;

  /// Looks up an entity by name.
  Result<EntityId> Find(const std::string& name) const;

  int NumEntities() const { return static_cast<int>(sites_.size()); }
  int NumSites() const { return num_sites_; }

  /// True iff the id refers to an entity of this database.
  bool ValidEntity(EntityId e) const {
    return e >= 0 && e < NumEntities();
  }

  /// All entities stored at `site`.
  std::vector<EntityId> EntitiesAt(SiteId site) const;

 private:
  int num_sites_;
  std::vector<SiteId> sites_;       // indexed by EntityId
  std::vector<std::string> names_;  // indexed by EntityId
  std::unordered_map<std::string, EntityId> by_name_;
};

}  // namespace dislock

#endif  // DISLOCK_TXN_DATABASE_H_
