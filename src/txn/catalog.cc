#include "txn/catalog.h"

#include <algorithm>
#include <utility>

#include "util/string_util.h"

namespace dislock {

SystemView CatalogSnapshot::View() const {
  std::vector<const Transaction*> ptrs;
  ptrs.reserve(txns_.size());
  for (const auto& t : txns_) ptrs.push_back(t.get());
  return SystemView(db_, std::move(ptrs));
}

TransactionSystem CatalogSnapshot::Materialize() const {
  TransactionSystem system(db_);
  for (const auto& t : txns_) {
    // Catalog invariants (unique names, same db) make Add infallible here.
    DISLOCK_CHECK(system.Add(*t).ok());
  }
  return system;
}

int CatalogSnapshot::TotalSteps() const {
  int n = 0;
  for (const auto& t : txns_) n += t->NumSteps();
  return n;
}

TransactionCatalog::TransactionCatalog(const DistributedDatabase* db)
    : db_(db) {
  DISLOCK_CHECK(db != nullptr);
}

TransactionCatalog::TransactionCatalog(const DistributedDatabase* db,
                                       TxnId first_id, TxnId stride)
    : db_(db), next_id_(first_id), id_stride_(stride) {
  DISLOCK_CHECK(db != nullptr);
  DISLOCK_CHECK(first_id >= 0);
  DISLOCK_CHECK(stride >= 1);
}

Status TransactionCatalog::CheckInsertable(const Transaction& txn,
                                           const ValidateOptions& options,
                                           TxnId replacing) const {
  if (&txn.db() != db_) {
    return Status::InvalidArgument(
        StrCat("transaction '", txn.name(),
               "' is over a different database object"));
  }
  auto named = by_name_.find(txn.name());
  if (named != by_name_.end() && named->second != replacing) {
    return Status::InvalidModel(
        StrCat("duplicate transaction name '", txn.name(), "'"));
  }
  return ValidateTransaction(txn, options);
}

Result<TxnId> TransactionCatalog::Add(Transaction txn,
                                      const ValidateOptions& options) {
  DISLOCK_RETURN_NOT_OK(CheckInsertable(txn, options, kInvalidTxnId));
  TxnId id = next_id_;
  next_id_ += id_stride_;
  by_name_.emplace(txn.name(), id);
  entries_.push_back(
      {id, std::make_shared<const Transaction>(std::move(txn))});
  ++generation_;
  return id;
}

Status TransactionCatalog::Remove(TxnId id) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [id](const Entry& e) { return e.id == id; });
  if (it == entries_.end()) {
    return Status::NotFound(StrCat("no live transaction with id ", id));
  }
  by_name_.erase(it->txn->name());
  entries_.erase(it);
  ++generation_;
  return Status::OK();
}

Status TransactionCatalog::RemoveByName(const std::string& name) {
  auto named = by_name_.find(name);
  if (named == by_name_.end()) {
    return Status::NotFound(StrCat("no transaction named '", name, "'"));
  }
  return Remove(named->second);
}

Status TransactionCatalog::Replace(TxnId id, Transaction txn,
                                   const ValidateOptions& options) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [id](const Entry& e) { return e.id == id; });
  if (it == entries_.end()) {
    return Status::NotFound(StrCat("no live transaction with id ", id));
  }
  DISLOCK_RETURN_NOT_OK(CheckInsertable(txn, options, id));
  by_name_.erase(it->txn->name());
  by_name_.emplace(txn.name(), id);
  it->txn = std::make_shared<const Transaction>(std::move(txn));
  ++generation_;
  return Status::OK();
}

Status TransactionCatalog::ReplaceByName(const std::string& name,
                                         Transaction txn) {
  auto named = by_name_.find(name);
  if (named == by_name_.end()) {
    return Status::NotFound(StrCat("no transaction named '", name, "'"));
  }
  return Replace(named->second, std::move(txn));
}

std::shared_ptr<const Transaction> TransactionCatalog::Find(TxnId id) const {
  for (const Entry& e : entries_) {
    if (e.id == id) return e.txn;
  }
  return nullptr;
}

std::optional<TxnId> TransactionCatalog::FindByName(
    const std::string& name) const {
  auto named = by_name_.find(name);
  if (named == by_name_.end()) return std::nullopt;
  return named->second;
}

CatalogSnapshot TransactionCatalog::Snapshot() const {
  std::vector<TxnId> ids;
  std::vector<std::shared_ptr<const Transaction>> txns;
  ids.reserve(entries_.size());
  txns.reserve(entries_.size());
  for (const Entry& e : entries_) {
    ids.push_back(e.id);
    txns.push_back(e.txn);
  }
  return CatalogSnapshot(db_, generation_, std::move(ids), std::move(txns));
}

int TransactionCatalog::TotalSteps() const {
  int n = 0;
  for (const Entry& e : entries_) n += e.txn->NumSteps();
  return n;
}

std::string TransactionCatalog::ToString() const {
  std::string out;
  for (const Entry& e : entries_) out += e.txn->ToString();
  return out;
}

}  // namespace dislock
