#ifndef DISLOCK_TXN_TEXT_FORMAT_H_
#define DISLOCK_TXN_TEXT_FORMAT_H_

#include <memory>
#include <string>

#include "txn/system.h"
#include "util/status.h"

namespace dislock {

/// A parsed transaction system owning its database.
struct ParsedSystem {
  std::shared_ptr<DistributedDatabase> db;
  std::shared_ptr<TransactionSystem> system;
};

/// Parses the dislock text format. Example:
///
///     # A two-site system.
///     sites 2
///     entity x 0
///     entity y 1
///
///     txn T1
///       lock x        # step 0
///       update x      # step 1
///       unlock x      # step 2
///       lock y        # step 3
///       update y      # step 4
///       unlock y      # step 5
///       edge 2 3      # cross-site precedence Ux -> Ly
///     end
///
/// Rules:
///   * `sites N` must come first; then `entity <name> <site>` lines;
///   * `txn <name> [nochain]` ... `end` delimits a transaction; steps are
///     `lock|update|unlock <entity>`, numbered 0,1,2,... in order;
///   * steps at one site are chained automatically in file order (matching
///     the model's per-site total order) unless `nochain` is given;
///   * `edge A B` adds the precedence step A -> step B;
///   * `#` starts a comment; blank lines are ignored.
///
/// The parsed transactions are validated (Section 2 rules), and duplicate
/// transaction names are rejected as a validation error.
Result<ParsedSystem> ParseSystemText(const std::string& text);

/// Parses a single `txn <name> [nochain] ... end` block (same grammar as
/// inside a system file) against an existing database — the `add` /
/// `replace` path of `dislock session`, where the database is fixed by the
/// loaded system and transactions arrive one at a time. The transaction is
/// validated; it is NOT checked against any catalog (name uniqueness is
/// enforced at the catalog insert).
Result<Transaction> ParseTransactionText(const std::string& text,
                                         const DistributedDatabase& db);

/// Serializes a system back to the text format (with explicit `nochain` and
/// every precedence spelled out as an edge, so arbitrary partial orders
/// round-trip exactly).
std::string SystemToText(const TransactionSystem& system);

/// Serializes one transaction as a `txn <name> nochain ... end` block — the
/// grammar ParseTransactionText accepts, so a transaction round-trips
/// through the session `add`/`replace` wire path exactly.
std::string TransactionToText(const Transaction& txn);

}  // namespace dislock

#endif  // DISLOCK_TXN_TEXT_FORMAT_H_
