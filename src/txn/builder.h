#ifndef DISLOCK_TXN_BUILDER_H_
#define DISLOCK_TXN_BUILDER_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "txn/transaction.h"
#include "txn/validate.h"

namespace dislock {

/// Fluent constructor for transactions.
///
/// The paper's model requires steps at the same site to be totally ordered.
/// With `auto_site_chain` (the default) the builder adds a precedence from
/// the previously added step at a site to each new step at that site, so a
/// transaction is specified exactly as in the paper's figures: a chain of
/// steps per site, plus explicit cross-site arcs added with Edge().
///
/// Example (transaction T1 of Fig. 3a: Ly; Lx Ux; with Ly before Uy at
/// site 1 and Lx..Ux at site 2 chained automatically):
///
///   TransactionBuilder b(&db, "T1");
///   StepId ly = b.Lock("y");    // site 1
///   StepId lx = b.Lock("x");    // site 2
///   StepId ux = b.Unlock("x");  // site 2, chained after lx
///   StepId uy = b.Unlock("y");  // site 1, chained after ly
///   b.Edge(lx, uy);             // cross-site precedence
///   Transaction t1 = b.Build();
class TransactionBuilder {
 public:
  explicit TransactionBuilder(const DistributedDatabase* db,
                              std::string name = "T",
                              bool auto_site_chain = true);

  /// Adds a `lock` step on the named entity (which must exist).
  StepId Lock(const std::string& entity);
  /// Adds an `unlock` step.
  StepId Unlock(const std::string& entity);
  /// Adds an `update` step.
  StepId Update(const std::string& entity);
  /// Adds a shared (read) lock / unlock step.
  StepId LockShared(const std::string& entity);
  StepId UnlockShared(const std::string& entity);

  /// Adds a lock / update / unlock triple on the entity, in order.
  /// Returns the id of the lock step.
  StepId LockUpdateUnlock(const std::string& entity);

  /// Adds a step by entity id.
  StepId Add(StepKind kind, EntityId entity, bool shared = false);

  /// Adds the precedence a -> b.
  TransactionBuilder& Edge(StepId a, StepId b);

  /// Chains the given steps in order: s0 -> s1 -> ... -> sk.
  TransactionBuilder& Chain(std::initializer_list<StepId> steps);

  /// Returns the transaction built so far (copy; the builder stays usable).
  Transaction Build() const { return txn_; }

  /// Validates under `options` and returns the transaction, or the first
  /// model violation.
  Result<Transaction> BuildValidated(
      const ValidateOptions& options = ValidateOptions()) const;

  /// Access to the transaction under construction.
  const Transaction& txn() const { return txn_; }

 private:
  EntityId MustFind(const std::string& name) const;

  Transaction txn_;
  bool auto_site_chain_;
  std::vector<StepId> last_at_site_;  // indexed by SiteId
};

}  // namespace dislock

#endif  // DISLOCK_TXN_BUILDER_H_
