#ifndef DISLOCK_TXN_SCHEDULE_H_
#define DISLOCK_TXN_SCHEDULE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "txn/system.h"
#include "util/status.h"

namespace dislock {

/// One event of a schedule: step `step` of transaction `txn`.
struct SysStep {
  int txn;
  StepId step;
  bool operator==(const SysStep&) const = default;
};

/// A schedule h: a total ordering of all the steps of a transaction system
/// that (a) does not contradict any transaction's partial order and (b)
/// respects lock exclusion (Section 2). Legality is checked by
/// CheckScheduleLegal, not enforced by this container.
class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::vector<SysStep> events)
      : events_(std::move(events)) {}

  void Append(int txn, StepId step) { events_.push_back({txn, step}); }
  size_t size() const { return events_.size(); }
  const SysStep& at(size_t i) const { return events_[i]; }
  const std::vector<SysStep>& events() const { return events_; }

  /// Renders like the paper's Fig. 1: steps with transaction subscripts,
  /// e.g. "Lx_1 x_1 Ly_2 ...".
  std::string ToString(const TransactionSystem& system) const;

 private:
  std::vector<SysStep> events_;
};

/// Checks that `schedule` is a legal schedule of `system`: every step occurs
/// exactly once, all partial orders are respected, each lock is taken only
/// when free and released only by its holder.
Status CheckScheduleLegal(const TransactionSystem& system,
                          const Schedule& schedule);

/// Outcome of the serializability test of a schedule.
struct SerializabilityAnalysis {
  /// True iff the schedule is (conflict-)serializable. For this update model
  /// — each step reads and rewrites its entity as a function of everything
  /// the transaction saw before — conflict- and view/final-state
  /// serializability coincide (Papadimitriou 1983, used as Proposition 1
  /// here), so this is exactly the paper's notion.
  bool serializable = false;
  /// When serializable: a witnessing serial order of transaction indices.
  std::vector<int> serial_order;
  /// The transaction-level precedence (conflict) digraph: arc i -> j iff
  /// some access of Ti to an entity precedes a conflicting access of Tj.
  Digraph precedence;
  /// When not serializable: one precedence cycle, as transaction indices.
  std::vector<int> conflict_cycle;
};

/// Analyzes the serializability of a legal schedule.
///
/// Accesses are per-entity "sections": a transaction's lock..unlock interval
/// on x (or the span of its updates of x when x is unlocked, which the model
/// permits only for entities private to one transaction). Two sections on
/// the same entity by different transactions conflict; the direction is the
/// order of the disjoint sections in the schedule, and overlapping sections
/// (possible only for unlocked updates) conflict both ways.
SerializabilityAnalysis AnalyzeSerializability(const TransactionSystem& system,
                                               const Schedule& schedule);

/// Convenience: AnalyzeSerializability(...).serializable.
bool IsSerializable(const TransactionSystem& system, const Schedule& schedule);

/// Builds the serial schedule that runs the transactions one after another
/// in the order given by `txn_order` (each transaction's steps in one of its
/// linear extensions).
Result<Schedule> SerialSchedule(const TransactionSystem& system,
                                const std::vector<int>& txn_order);

/// Visitor for EnumerateSchedules; return false to stop early.
using ScheduleVisitor = std::function<bool(const Schedule&)>;

/// Exhaustively enumerates all legal schedules of `system` (ground-truth
/// oracle for small instances). Runs that reach a state where no step can
/// proceed (a lock deadlock) are *not* schedules and are skipped; their
/// count is reported through `deadlock_dead_ends` if non-null.
///
/// Returns ResourceExhausted if more than `max_schedules` schedules exist.
Status EnumerateSchedules(const TransactionSystem& system,
                          int64_t max_schedules,
                          const ScheduleVisitor& visit,
                          int64_t* deadlock_dead_ends = nullptr);

}  // namespace dislock

#endif  // DISLOCK_TXN_SCHEDULE_H_
