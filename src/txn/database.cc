#include "txn/database.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace dislock {

DistributedDatabase::DistributedDatabase(int num_sites)
    : num_sites_(num_sites) {
  DISLOCK_CHECK_GT(num_sites, 0);
}

Result<EntityId> DistributedDatabase::AddEntity(const std::string& name,
                                                SiteId site) {
  if (name.empty()) {
    return Status::InvalidArgument("entity name must be non-empty");
  }
  if (site < 0 || site >= num_sites_) {
    return Status::InvalidArgument(
        StrCat("site ", site, " out of range [0, ", num_sites_, ")"));
  }
  if (by_name_.count(name) > 0) {
    return Status::InvalidArgument(StrCat("duplicate entity name '", name,
                                          "'"));
  }
  EntityId id = static_cast<EntityId>(sites_.size());
  sites_.push_back(site);
  names_.push_back(name);
  by_name_.emplace(name, id);
  return id;
}

EntityId DistributedDatabase::MustAddEntity(const std::string& name,
                                            SiteId site) {
  auto result = AddEntity(name, site);
  DISLOCK_CHECK(result.ok()) << result.status().ToString();
  return result.value();
}

SiteId DistributedDatabase::SiteOf(EntityId e) const {
  DISLOCK_CHECK(ValidEntity(e));
  return sites_[e];
}

const std::string& DistributedDatabase::NameOf(EntityId e) const {
  DISLOCK_CHECK(ValidEntity(e));
  return names_[e];
}

Result<EntityId> DistributedDatabase::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound(StrCat("no entity named '", name, "'"));
  }
  return it->second;
}

std::vector<EntityId> DistributedDatabase::EntitiesAt(SiteId site) const {
  std::vector<EntityId> out;
  for (EntityId e = 0; e < NumEntities(); ++e) {
    if (sites_[e] == site) out.push_back(e);
  }
  return out;
}

}  // namespace dislock
