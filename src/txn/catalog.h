#ifndef DISLOCK_TXN_CATALOG_H_
#define DISLOCK_TXN_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "txn/system.h"
#include "txn/transaction.h"
#include "txn/validate.h"
#include "util/status.h"

namespace dislock {

/// Stable handle to a transaction in a TransactionCatalog. Ids are assigned
/// once, never reused, and survive Replace (a replaced transaction keeps
/// its id — it is the same logical transaction with a new definition).
using TxnId = int64_t;

inline constexpr TxnId kInvalidTxnId = -1;

/// An immutable, cheaply copyable picture of a catalog at one generation:
/// the dense transaction order the analyses see, plus the stable TxnId of
/// each slot. Shares the transaction objects with the catalog (shared_ptr),
/// so a snapshot stays valid across later catalog edits.
class CatalogSnapshot {
 public:
  CatalogSnapshot(const DistributedDatabase* db, int64_t generation,
                  std::vector<TxnId> ids,
                  std::vector<std::shared_ptr<const Transaction>> txns)
      : db_(db),
        generation_(generation),
        ids_(std::move(ids)),
        txns_(std::move(txns)) {}

  int64_t generation() const { return generation_; }
  int NumTransactions() const { return static_cast<int>(txns_.size()); }
  const Transaction& txn(int i) const { return *txns_[static_cast<size_t>(i)]; }
  const std::shared_ptr<const Transaction>& txn_ptr(int i) const {
    return txns_[static_cast<size_t>(i)];
  }
  TxnId id(int i) const { return ids_[static_cast<size_t>(i)]; }
  const DistributedDatabase& db() const { return *db_; }

  /// A borrowed dense view for the analysis entry points; valid while this
  /// snapshot is alive.
  SystemView View() const;

  /// Deep-copies into a batch TransactionSystem in the same dense order
  /// (so a from-scratch analysis of the materialization is comparable
  /// index-for-index with an incremental analysis of the snapshot).
  TransactionSystem Materialize() const;

  int TotalSteps() const;

 private:
  const DistributedDatabase* db_;
  int64_t generation_;
  std::vector<TxnId> ids_;
  std::vector<std::shared_ptr<const Transaction>> txns_;
};

/// The mutable, versioned replacement for "rebuild a TransactionSystem and
/// start over": a catalog of live transactions supporting Add / Remove /
/// Replace with stable TxnIds and a generation counter that bumps on every
/// successful mutation. Real lock-managed workloads change one transaction
/// at a time; the IncrementalSafetyEngine (core/incremental/engine.h)
/// watches a catalog through snapshots and re-analyzes only what an edit
/// dirtied.
///
/// Invariants enforced at the mutation boundary (validation errors, never
/// CHECKs): every transaction validates under the Section 2 rules, is over
/// the catalog's database object, and transaction names are unique — two
/// transactions named "T1" would make diagnostics ambiguous.
///
/// Not thread-safe; external synchronization is required between a writer
/// and readers, as for any container. Snapshots, once taken, are immutable
/// and safe to read from any thread.
class TransactionCatalog {
 public:
  /// Creates an empty catalog over `db`; `db` must outlive the catalog.
  explicit TransactionCatalog(const DistributedDatabase* db);

  /// Creates an empty catalog whose ids run `first_id, first_id + stride,
  /// first_id + 2*stride, ...` instead of the dense `0, 1, 2, ...`. A
  /// ShardedCatalog (core/incremental/sharded_catalog.h) gives shard s of K
  /// the lane (s, K), so ids are globally unique across shards — no TxnId
  /// is ever reused or shared between two catalogs of one sharded group —
  /// and `id % K` recovers the owning shard.
  TransactionCatalog(const DistributedDatabase* db, TxnId first_id,
                     TxnId stride);

  /// Adds a transaction; returns its freshly assigned id. Fails with
  /// InvalidModel on a duplicate name or a validation error, and with
  /// InvalidArgument if the transaction is over a different database
  /// object. On error the catalog is unchanged.
  Result<TxnId> Add(Transaction txn,
                    const ValidateOptions& options = ValidateOptions());

  /// Removes a live transaction. NotFound if `id` is not live.
  Status Remove(TxnId id);
  /// Removes by name. NotFound if no live transaction has that name.
  Status RemoveByName(const std::string& name);

  /// Replaces the definition of a live transaction in place: the id and the
  /// dense position are preserved, the generation bumps. The new definition
  /// may change the name (subject to uniqueness against the others). Fails
  /// like Add; on error the catalog is unchanged.
  Status Replace(TxnId id, Transaction txn,
                 const ValidateOptions& options = ValidateOptions());
  /// Replace addressed by current name.
  Status ReplaceByName(const std::string& name, Transaction txn);

  int NumTransactions() const { return static_cast<int>(entries_.size()); }
  /// Monotonic version counter: 0 when empty-constructed, +1 per
  /// successful Add/Remove/Replace. Equal generations imply equal contents.
  int64_t generation() const { return generation_; }
  const DistributedDatabase& db() const { return *db_; }

  /// The live transaction with this id, or nullptr.
  std::shared_ptr<const Transaction> Find(TxnId id) const;
  /// The id of the live transaction with this name, if any.
  std::optional<TxnId> FindByName(const std::string& name) const;

  /// Immutable picture of the current contents (dense order = insertion
  /// order, with Replace keeping its slot).
  CatalogSnapshot Snapshot() const;

  /// Deep copy into a batch TransactionSystem, for from-scratch analyses.
  TransactionSystem Materialize() const { return Snapshot().Materialize(); }

  int TotalSteps() const;
  std::string ToString() const;

 private:
  struct Entry {
    TxnId id;
    std::shared_ptr<const Transaction> txn;
  };

  Status CheckInsertable(const Transaction& txn, const ValidateOptions& options,
                         TxnId replacing) const;

  const DistributedDatabase* db_;
  std::vector<Entry> entries_;  ///< live transactions, dense order
  std::map<std::string, TxnId> by_name_;
  TxnId next_id_ = 0;
  TxnId id_stride_ = 1;
  int64_t generation_ = 0;
};

}  // namespace dislock

#endif  // DISLOCK_TXN_CATALOG_H_
