#include "txn/step.h"

namespace dislock {

const char* StepKindPrefix(StepKind kind) {
  switch (kind) {
    case StepKind::kLock:
      return "L";
    case StepKind::kUnlock:
      return "U";
    case StepKind::kUpdate:
      return "";
  }
  return "?";
}

std::string StepToString(const Step& step, const DistributedDatabase& db) {
  std::string prefix = step.shared ? "S" : "";
  return prefix + StepKindPrefix(step.kind) + db.NameOf(step.entity);
}

}  // namespace dislock
