#ifndef DISLOCK_TXN_LINEAR_EXTENSION_H_
#define DISLOCK_TXN_LINEAR_EXTENSION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "txn/transaction.h"
#include "util/random.h"
#include "util/status.h"

namespace dislock {

/// A transaction "can alternatively be thought of as the set of all total
/// orders t compatible with it" (Section 2). These helpers enumerate and
/// sample that set; Lemma 1 reduces safety of partial-order transactions to
/// safety of all pairs of linear extensions, which is what the exhaustive
/// oracle iterates over.

/// Visitor for EnumerateLinearExtensions; return false to stop early.
using LinearExtensionVisitor =
    std::function<bool(const std::vector<StepId>&)>;

/// Enumerates every linear extension of `txn`'s partial order, invoking
/// `visit` for each. Stops early if `visit` returns false (OK) or if more
/// than `max_extensions` were produced (ResourceExhausted).
Status EnumerateLinearExtensions(const Transaction& txn,
                                 int64_t max_extensions,
                                 const LinearExtensionVisitor& visit);

/// Counts linear extensions, capped at `cap` (returns `cap` when there are
/// at least that many). Counting is #P-hard in general; this is plain
/// backtracking for small instances.
int64_t CountLinearExtensions(const Transaction& txn, int64_t cap);

/// Returns one uniformly-random *greedy* linear extension: repeatedly picks
/// a uniform available step. (Not uniform over extensions — fine for
/// Monte-Carlo schedule sampling, where only coverage matters.)
std::vector<StepId> RandomLinearExtension(const Transaction& txn, Rng* rng);

/// Materializes the total order `order` (a permutation of txn's steps) as a
/// new Transaction with the same steps (same ids) whose precedence DAG is
/// the chain order[0] -> order[1] -> ... . The result is the totally ordered
/// transaction t in the paper's "t in T" notation.
///
/// Precondition: `order` must be a linear extension of `txn` (checked).
Result<Transaction> Linearize(const Transaction& txn,
                              const std::vector<StepId>& order);

/// True iff `order` is a permutation of txn's steps respecting its partial
/// order.
bool IsLinearExtension(const Transaction& txn,
                       const std::vector<StepId>& order);

}  // namespace dislock

#endif  // DISLOCK_TXN_LINEAR_EXTENSION_H_
