#include "txn/validate.h"

#include "graph/topological.h"
#include "util/string_util.h"

namespace dislock {

Status ValidateTransaction(const Transaction& txn,
                           const ValidateOptions& options) {
  const DistributedDatabase& db = txn.db();

  // 1. The precedence relation must be acyclic.
  if (!IsAcyclic(txn.order())) {
    return Status::InvalidModel(
        StrCat("transaction ", txn.name(), ": precedence relation is cyclic"));
  }

  // 2. Lock/unlock pairing per entity.
  for (EntityId e = 0; e < db.NumEntities(); ++e) {
    int locks = txn.LockCount(e);
    int unlocks = txn.UnlockCount(e);
    if (locks > 1 || unlocks > 1) {
      return Status::InvalidModel(
          StrCat("transaction ", txn.name(), ": entity '", db.NameOf(e),
                 "' has ", locks, " lock and ", unlocks,
                 " unlock steps (at most one pair allowed)"));
    }
    if (locks != unlocks) {
      return Status::InvalidModel(
          StrCat("transaction ", txn.name(), ": entity '", db.NameOf(e),
                 "' has a lock without unlock or vice versa"));
    }
    if (locks == 1) {
      StepId l = txn.LockStep(e);
      StepId u = txn.UnlockStep(e);
      if (!txn.Precedes(l, u)) {
        return Status::InvalidModel(
            StrCat("transaction ", txn.name(), ": L", db.NameOf(e),
                   " does not precede U", db.NameOf(e)));
      }
      if (txn.GetStep(l).shared != txn.GetStep(u).shared) {
        return Status::InvalidModel(
            StrCat("transaction ", txn.name(), ": entity '", db.NameOf(e),
                   "' mixes a shared and an exclusive lock/unlock"));
      }
    }
  }

  // 3. Update placement.
  for (EntityId e = 0; e < db.NumEntities(); ++e) {
    std::vector<StepId> updates = txn.UpdateSteps(e);
    StepId l = txn.LockStep(e);
    StepId u = txn.UnlockStep(e);
    bool locked = l != kInvalidStep && u != kInvalidStep;
    if (!locked) {
      if (!updates.empty() && options.forbid_unlocked_updates) {
        return Status::InvalidModel(
            StrCat("transaction ", txn.name(), ": update of '", db.NameOf(e),
                   "' without a surrounding lock/unlock pair"));
      }
      continue;
    }
    if (!updates.empty() && txn.IsSharedSection(e)) {
      return Status::InvalidModel(
          StrCat("transaction ", txn.name(), ": update of '", db.NameOf(e),
                 "' inside a shared (read) lock section"));
    }
    for (StepId s : updates) {
      if (!txn.Precedes(l, s) || !txn.Precedes(s, u)) {
        return Status::InvalidModel(
            StrCat("transaction ", txn.name(), ": update of '", db.NameOf(e),
                   "' not between L", db.NameOf(e), " and U", db.NameOf(e)));
      }
    }
    if (options.require_update_between_locks && updates.empty()) {
      return Status::InvalidModel(
          StrCat("transaction ", txn.name(), ": no update of '", db.NameOf(e),
                 "' between its lock and unlock (superfluous locking)"));
    }
  }

  // 4. Steps at the same site must be totally ordered.
  for (StepId a = 0; a < txn.NumSteps(); ++a) {
    for (StepId b = a + 1; b < txn.NumSteps(); ++b) {
      if (txn.SiteOfStep(a) != txn.SiteOfStep(b)) continue;
      if (txn.Concurrent(a, b)) {
        return Status::InvalidModel(StrCat(
            "transaction ", txn.name(), ": steps ", txn.StepString(a), "#", a,
            " and ", txn.StepString(b), "#", b, " are at site ",
            txn.SiteOfStep(a), " but are not ordered"));
      }
    }
  }

  return Status::OK();
}

}  // namespace dislock
