#ifndef DISLOCK_TXN_STEP_H_
#define DISLOCK_TXN_STEP_H_

#include <cstdint>
#include <string>

#include "txn/database.h"

namespace dislock {

/// Index of a step within one transaction.
using StepId = int32_t;
constexpr StepId kInvalidStep = -1;

/// The three step kinds of the locking model (Section 2): `lock x` and
/// `unlock x` set/clear the lock bit of entity x; every other step is an
/// `update x`, the indivisible execution of
///   temp_s := x;  x := f_s(temp_s1, ..., temp_sk)
/// where s1..sk are the steps preceding s in the transaction.
enum class StepKind : uint8_t { kLock, kUnlock, kUpdate };

/// Short mnemonic: "L", "U", or "u" (updates are lowercase, following the
/// paper's figures which abbreviate `update x` as plain `x`).
const char* StepKindPrefix(StepKind kind);

/// One step of a transaction: a kind applied to an entity. `shared` marks
/// read (shared) locks — the paper's Section 1 "variants of locking"
/// extension: two shared sections on the same entity may overlap in a
/// schedule; an exclusive section excludes everything. Updates are writes
/// and are only permitted inside exclusive sections.
struct Step {
  StepKind kind;
  EntityId entity;
  bool shared = false;

  bool operator==(const Step&) const = default;
};

/// Renders a step like the paper does: "Lx", "Ux", or "x" for updates;
/// shared locks render as "SLx" / "SUx".
std::string StepToString(const Step& step, const DistributedDatabase& db);

}  // namespace dislock

#endif  // DISLOCK_TXN_STEP_H_
