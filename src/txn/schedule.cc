#include "txn/schedule.h"

#include <algorithm>
#include <optional>
#include <sstream>

#include "graph/topological.h"
#include "util/string_util.h"

namespace dislock {

std::string Schedule::ToString(const TransactionSystem& system) const {
  std::ostringstream out;
  bool first = true;
  for (const SysStep& ev : events_) {
    if (!first) out << " ";
    out << system.txn(ev.txn).StepString(ev.step) << "_" << (ev.txn + 1);
    first = false;
  }
  return out.str();
}

Status CheckScheduleLegal(const TransactionSystem& system,
                          const Schedule& schedule) {
  const int k = system.NumTransactions();
  // Position of each step in the schedule; -1 = not seen.
  std::vector<std::vector<int>> pos(k);
  for (int i = 0; i < k; ++i) pos[i].assign(system.txn(i).NumSteps(), -1);

  int expected = 0;
  for (int i = 0; i < k; ++i) expected += system.txn(i).NumSteps();
  if (static_cast<int>(schedule.size()) != expected) {
    return Status::InvalidArgument(
        StrCat("schedule has ", schedule.size(), " events, system has ",
               expected, " steps"));
  }

  for (size_t idx = 0; idx < schedule.size(); ++idx) {
    const SysStep& ev = schedule.at(idx);
    if (ev.txn < 0 || ev.txn >= k ||
        !system.txn(ev.txn).ValidStep(ev.step)) {
      return Status::InvalidArgument(
          StrCat("event ", idx, " refers to an unknown step"));
    }
    if (pos[ev.txn][ev.step] != -1) {
      return Status::InvalidArgument(
          StrCat("step ", system.txn(ev.txn).StepString(ev.step), " of T",
                 ev.txn + 1, " occurs twice"));
    }
    pos[ev.txn][ev.step] = static_cast<int>(idx);
  }

  // Partial orders.
  for (int i = 0; i < k; ++i) {
    const Transaction& t = system.txn(i);
    for (StepId s = 0; s < t.NumSteps(); ++s) {
      for (NodeId v : t.order().OutNeighbors(s)) {
        if (pos[i][s] > pos[i][v]) {
          return Status::InvalidArgument(
              StrCat("schedule violates ", t.name(), "'s precedence ",
                     t.StepString(s), " -> ", t.StepString(v)));
        }
      }
    }
  }

  // Lock semantics: replay with a reader/writer lock table. Exclusive
  // locks exclude everything; shared locks exclude only writers.
  const int n_entities = system.db().NumEntities();
  std::vector<int> writer(n_entities, -1);
  std::vector<int> reader_count(n_entities, 0);
  std::vector<std::vector<char>> reading(
      n_entities, std::vector<char>(k, 0));
  for (size_t idx = 0; idx < schedule.size(); ++idx) {
    const SysStep& ev = schedule.at(idx);
    const Step& step = system.txn(ev.txn).GetStep(ev.step);
    if (step.kind == StepKind::kLock) {
      if (writer[step.entity] != -1) {
        return Status::InvalidArgument(
            StrCat("event ", idx, ": T", ev.txn + 1, " locks '",
                   system.db().NameOf(step.entity),
                   "' exclusively held by T", writer[step.entity] + 1));
      }
      if (step.shared) {
        reading[step.entity][ev.txn] = 1;
        ++reader_count[step.entity];
      } else {
        if (reader_count[step.entity] != 0) {
          return Status::InvalidArgument(
              StrCat("event ", idx, ": T", ev.txn + 1,
                     " write-locks '", system.db().NameOf(step.entity),
                     "' while it has readers"));
        }
        writer[step.entity] = ev.txn;
      }
    } else if (step.kind == StepKind::kUnlock) {
      if (step.shared) {
        if (!reading[step.entity][ev.txn]) {
          return Status::InvalidArgument(
              StrCat("event ", idx, ": T", ev.txn + 1,
                     " releases a read lock on '",
                     system.db().NameOf(step.entity),
                     "' it does not hold"));
        }
        reading[step.entity][ev.txn] = 0;
        --reader_count[step.entity];
      } else {
        if (writer[step.entity] != ev.txn) {
          return Status::InvalidArgument(
              StrCat("event ", idx, ": T", ev.txn + 1, " unlocks '",
                     system.db().NameOf(step.entity),
                     "' which it does not hold"));
        }
        writer[step.entity] = -1;
      }
    }
  }
  return Status::OK();
}

namespace {

/// [first, last] schedule positions of one transaction's access section on
/// one entity. `shared` marks read sections, which do not conflict with
/// each other.
struct Section {
  int txn;
  int begin;
  int end;
  bool shared;
};

}  // namespace

SerializabilityAnalysis AnalyzeSerializability(
    const TransactionSystem& system, const Schedule& schedule) {
  const int k = system.NumTransactions();
  SerializabilityAnalysis out;
  out.precedence = Digraph(k);

  // Position lookup.
  std::vector<std::vector<int>> pos(k);
  for (int i = 0; i < k; ++i) pos[i].assign(system.txn(i).NumSteps(), -1);
  for (size_t idx = 0; idx < schedule.size(); ++idx) {
    const SysStep& ev = schedule.at(idx);
    pos[ev.txn][ev.step] = static_cast<int>(idx);
  }

  // Build access sections per entity, then precedence arcs.
  for (EntityId e = 0; e < system.db().NumEntities(); ++e) {
    std::vector<Section> sections;
    for (int i = 0; i < k; ++i) {
      const Transaction& t = system.txn(i);
      StepId l = t.LockStep(e);
      StepId u = t.UnlockStep(e);
      if (l != kInvalidStep && u != kInvalidStep) {
        sections.push_back({i, pos[i][l], pos[i][u], t.IsSharedSection(e)});
        continue;
      }
      std::vector<StepId> updates = t.UpdateSteps(e);
      if (!updates.empty()) {
        int lo = pos[i][updates[0]];
        int hi = lo;
        for (StepId s : updates) {
          lo = std::min(lo, pos[i][s]);
          hi = std::max(hi, pos[i][s]);
        }
        sections.push_back({i, lo, hi, /*shared=*/false});
      }
    }
    for (size_t a = 0; a < sections.size(); ++a) {
      for (size_t b = a + 1; b < sections.size(); ++b) {
        const Section& sa = sections[a];
        const Section& sb = sections[b];
        if (sa.shared && sb.shared) continue;  // reads never conflict
        if (sa.end < sb.begin) {
          out.precedence.AddArcUnique(sa.txn, sb.txn);
        } else if (sb.end < sa.begin) {
          out.precedence.AddArcUnique(sb.txn, sa.txn);
        } else {
          // Overlapping sections (unlocked updates): conflicts both ways.
          out.precedence.AddArcUnique(sa.txn, sb.txn);
          out.precedence.AddArcUnique(sb.txn, sa.txn);
        }
      }
    }
  }

  auto order = TopologicalSort(out.precedence);
  if (order.ok()) {
    out.serializable = true;
    out.serial_order.assign(order.value().begin(), order.value().end());
  } else {
    out.serializable = false;
    // Extract one cycle by walking arcs within a non-trivial SCC.
    // A DFS from any node of a cyclic graph that revisits its stack works;
    // simplest here: find i -> ... -> i via DFS.
    std::vector<int> state(k, 0);  // 0 unvisited, 1 on stack, 2 done
    std::vector<int> parent(k, -1);
    std::function<bool(int)> dfs = [&](int u) -> bool {
      state[u] = 1;
      for (NodeId v : out.precedence.OutNeighbors(u)) {
        if (state[v] == 1) {
          // Found a back arc u -> v: unwind the stack from u to v.
          out.conflict_cycle.clear();
          int w = u;
          while (w != v) {
            out.conflict_cycle.push_back(w);
            w = parent[w];
          }
          out.conflict_cycle.push_back(v);
          std::reverse(out.conflict_cycle.begin(), out.conflict_cycle.end());
          return true;
        }
        if (state[v] == 0) {
          parent[v] = u;
          if (dfs(v)) return true;
        }
      }
      state[u] = 2;
      return false;
    };
    for (int i = 0; i < k; ++i) {
      if (state[i] == 0 && dfs(i)) break;
    }
  }
  return out;
}

bool IsSerializable(const TransactionSystem& system,
                    const Schedule& schedule) {
  return AnalyzeSerializability(system, schedule).serializable;
}

Result<Schedule> SerialSchedule(const TransactionSystem& system,
                                const std::vector<int>& txn_order) {
  if (static_cast<int>(txn_order.size()) != system.NumTransactions()) {
    return Status::InvalidArgument("txn_order size mismatch");
  }
  Schedule out;
  std::vector<bool> seen(system.NumTransactions(), false);
  for (int i : txn_order) {
    if (i < 0 || i >= system.NumTransactions() || seen[i]) {
      return Status::InvalidArgument("txn_order is not a permutation");
    }
    seen[i] = true;
    auto topo = TopologicalSort(system.txn(i).order());
    if (!topo.ok()) {
      return Status::InvalidModel(
          StrCat("transaction ", system.txn(i).name(), " is cyclic"));
    }
    for (NodeId s : topo.value()) out.Append(i, s);
  }
  return out;
}

namespace {

/// DFS state for exhaustive schedule enumeration.
class ScheduleEnumerator {
 public:
  ScheduleEnumerator(const TransactionSystem& system, int64_t max_schedules,
                     const ScheduleVisitor& visit)
      : system_(system), budget_(max_schedules), visit_(visit) {
    const int k = system.NumTransactions();
    indegree_.resize(k);
    total_steps_ = 0;
    for (int i = 0; i < k; ++i) {
      const Digraph& g = system.txn(i).order();
      indegree_[i].assign(g.NumNodes(), 0);
      for (NodeId u = 0; u < g.NumNodes(); ++u) {
        for (NodeId v : g.OutNeighbors(u)) ++indegree_[i][v];
      }
      total_steps_ += g.NumNodes();
    }
    writer_.assign(system.db().NumEntities(), -1);
    reader_count_.assign(system.db().NumEntities(), 0);
    reading_.assign(system.db().NumEntities(),
                    std::vector<char>(system.NumTransactions(), 0));
  }

  /// Returns false when stopped early (visitor said stop, or budget hit).
  bool Run() { return Dfs(); }

  bool exhausted() const { return exhausted_; }
  int64_t deadlock_dead_ends() const { return deadlocks_; }

 private:
  bool StepEnabled(int i, StepId s) const {
    if (indegree_[i][s] != 0) return false;
    const Step& step = system_.txn(i).GetStep(s);
    if (step.kind == StepKind::kLock) {
      if (writer_[step.entity] != -1) return false;
      return step.shared || reader_count_[step.entity] == 0;
    }
    if (step.kind == StepKind::kUnlock) {
      return step.shared ? reading_[step.entity][i] != 0
                         : writer_[step.entity] == i;
    }
    return true;
  }

  void Apply(int i, const Step& step) {
    if (step.kind == StepKind::kLock) {
      if (step.shared) {
        reading_[step.entity][i] = 1;
        ++reader_count_[step.entity];
      } else {
        writer_[step.entity] = i;
      }
    } else if (step.kind == StepKind::kUnlock) {
      if (step.shared) {
        reading_[step.entity][i] = 0;
        --reader_count_[step.entity];
      } else {
        writer_[step.entity] = -1;
      }
    }
  }

  void Undo(int i, const Step& step) {
    if (step.kind == StepKind::kLock) {
      if (step.shared) {
        reading_[step.entity][i] = 0;
        --reader_count_[step.entity];
      } else {
        writer_[step.entity] = -1;
      }
    } else if (step.kind == StepKind::kUnlock) {
      if (step.shared) {
        reading_[step.entity][i] = 1;
        ++reader_count_[step.entity];
      } else {
        writer_[step.entity] = i;
      }
    }
  }

  bool Dfs() {
    if (static_cast<int>(prefix_.size()) == total_steps_) {
      if (budget_ <= 0) {
        exhausted_ = true;
        return false;
      }
      --budget_;
      return visit_(Schedule(prefix_));
    }
    bool any = false;
    for (int i = 0; i < system_.NumTransactions(); ++i) {
      const Transaction& t = system_.txn(i);
      for (StepId s = 0; s < t.NumSteps(); ++s) {
        if (!StepEnabled(i, s)) continue;
        any = true;
        // Emit step s of txn i.
        const Step& step = t.GetStep(s);
        Apply(i, step);
        indegree_[i][s] = -1;
        for (NodeId v : t.order().OutNeighbors(s)) --indegree_[i][v];
        prefix_.push_back({i, s});

        bool keep_going = Dfs();

        prefix_.pop_back();
        for (NodeId v : t.order().OutNeighbors(s)) ++indegree_[i][v];
        indegree_[i][s] = 0;
        Undo(i, step);
        if (!keep_going) return false;
      }
    }
    if (!any) ++deadlocks_;  // stuck before completion: lock deadlock
    return true;
  }

  const TransactionSystem& system_;
  int64_t budget_;
  const ScheduleVisitor& visit_;
  std::vector<std::vector<int>> indegree_;
  std::vector<int> writer_;
  std::vector<int> reader_count_;
  std::vector<std::vector<char>> reading_;
  std::vector<SysStep> prefix_;
  int total_steps_ = 0;
  int64_t deadlocks_ = 0;
  bool exhausted_ = false;
};

}  // namespace

Status EnumerateSchedules(const TransactionSystem& system,
                          int64_t max_schedules, const ScheduleVisitor& visit,
                          int64_t* deadlock_dead_ends) {
  ScheduleEnumerator enumerator(system, max_schedules, visit);
  enumerator.Run();
  if (deadlock_dead_ends != nullptr) {
    *deadlock_dead_ends = enumerator.deadlock_dead_ends();
  }
  if (enumerator.exhausted()) {
    return Status::ResourceExhausted(
        "more legal schedules than the configured cap");
  }
  return Status::OK();
}

}  // namespace dislock
