#include "txn/text_format.h"

#include <sstream>

#include "txn/builder.h"
#include "txn/validate.h"
#include "util/string_util.h"

namespace dislock {

namespace {

/// Strips a trailing "# comment" and surrounding whitespace.
std::string StripComment(const std::string& line) {
  size_t hash = line.find('#');
  return Trim(hash == std::string::npos ? line : line.substr(0, hash));
}

/// Parses the arguments of a `txn` header line (everything after the
/// keyword): a name plus an optional `nochain` flag.
Status ParseTxnHeader(std::istringstream* in, std::string* name,
                      bool* auto_chain) {
  std::string flag;
  *in >> *name >> flag;
  if (name->empty()) {
    return Status::InvalidArgument("usage: txn <name> [nochain]");
  }
  *auto_chain = true;
  if (flag == "nochain") {
    *auto_chain = false;
  } else if (!flag.empty()) {
    return Status::InvalidArgument(StrCat("unknown txn flag '", flag, "'"));
  }
  return Status::OK();
}

/// Parses one line of a txn block body (a step or an edge) into `builder`.
/// The line is already stripped and non-empty and is not `end`.
Status ParseTxnBodyLine(const std::string& line,
                        const DistributedDatabase& db,
                        TransactionBuilder* builder) {
  std::istringstream in(line);
  std::string keyword;
  in >> keyword;

  if (keyword == "lock" || keyword == "update" || keyword == "unlock" ||
      keyword == "slock" || keyword == "sunlock") {
    std::string entity;
    in >> entity;
    if (entity.empty()) {
      return Status::InvalidArgument("step needs an entity name");
    }
    auto e = db.Find(entity);
    if (!e.ok()) return e.status();
    bool shared = keyword[0] == 's';
    StepKind kind = keyword == "lock" || keyword == "slock"
                        ? StepKind::kLock
                    : keyword == "update" ? StepKind::kUpdate
                                          : StepKind::kUnlock;
    builder->Add(kind, e.value(), shared);
    return Status::OK();
  }

  if (keyword == "edge") {
    int a = -1;
    int b = -1;
    in >> a >> b;
    if (in.fail() || !builder->txn().ValidStep(a) ||
        !builder->txn().ValidStep(b)) {
      return Status::InvalidArgument(
          "usage: edge <stepA> <stepB> with existing step ids");
    }
    builder->Edge(a, b);
    return Status::OK();
  }

  return Status::InvalidArgument(
      StrCat("unknown directive '", keyword, "'"));
}

}  // namespace

Result<ParsedSystem> ParseSystemText(const std::string& text) {
  ParsedSystem parsed;
  std::unique_ptr<TransactionBuilder> builder;
  bool in_txn = false;
  int line_no = 0;

  auto error = [&line_no](const std::string& message) {
    return Status::InvalidArgument(
        StrCat("line ", line_no, ": ", message));
  };

  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string line = StripComment(raw);
    if (line.empty()) continue;
    std::istringstream in(line);
    std::string keyword;
    in >> keyword;

    if (keyword == "sites") {
      if (parsed.db != nullptr) return error("duplicate 'sites' directive");
      int n = 0;
      in >> n;
      if (in.fail() || n <= 0) return error("'sites' needs a positive count");
      parsed.db = std::make_shared<DistributedDatabase>(n);
      parsed.system = std::make_shared<TransactionSystem>(parsed.db.get());
      continue;
    }
    if (parsed.db == nullptr) {
      return error("'sites N' must come before everything else");
    }

    if (keyword == "entity") {
      if (in_txn) return error("'entity' not allowed inside a txn block");
      std::string name;
      int site = -1;
      in >> name >> site;
      if (in.fail()) return error("usage: entity <name> <site>");
      auto added = parsed.db->AddEntity(name, site);
      if (!added.ok()) return error(added.status().message());
      continue;
    }

    if (keyword == "txn") {
      if (in_txn) return error("nested 'txn' blocks are not allowed");
      std::string name;
      bool auto_chain = true;
      Status header = ParseTxnHeader(&in, &name, &auto_chain);
      if (!header.ok()) return error(header.message());
      builder = std::make_unique<TransactionBuilder>(parsed.db.get(), name,
                                                     auto_chain);
      in_txn = true;
      continue;
    }

    if (keyword == "end") {
      if (!in_txn) return error("'end' without 'txn'");
      auto txn = builder->BuildValidated();
      if (!txn.ok()) return error(txn.status().message());
      Status added = parsed.system->Add(std::move(txn).value());
      if (!added.ok()) return error(added.message());
      builder.reset();
      in_txn = false;
      continue;
    }

    if (in_txn) {
      Status body = ParseTxnBodyLine(line, *parsed.db, builder.get());
      if (!body.ok()) return error(body.message());
      continue;
    }

    return error(StrCat("unknown directive '", keyword, "'"));
  }
  if (in_txn) return Status::InvalidArgument("unterminated txn block");
  if (parsed.db == nullptr) {
    return Status::InvalidArgument("empty input: missing 'sites N'");
  }
  return parsed;
}

Result<Transaction> ParseTransactionText(const std::string& text,
                                         const DistributedDatabase& db) {
  std::unique_ptr<TransactionBuilder> builder;
  bool in_txn = false;
  bool done = false;
  int line_no = 0;

  auto error = [&line_no](const std::string& message) {
    return Status::InvalidArgument(
        StrCat("line ", line_no, ": ", message));
  };

  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string line = StripComment(raw);
    if (line.empty()) continue;
    if (done) return error("trailing content after 'end'");
    std::istringstream in(line);
    std::string keyword;
    in >> keyword;

    if (keyword == "txn") {
      if (in_txn) return error("nested 'txn' blocks are not allowed");
      std::string name;
      bool auto_chain = true;
      Status header = ParseTxnHeader(&in, &name, &auto_chain);
      if (!header.ok()) return error(header.message());
      builder = std::make_unique<TransactionBuilder>(&db, name, auto_chain);
      in_txn = true;
      continue;
    }
    if (!in_txn) return error("expected a 'txn <name>' header");

    if (keyword == "end") {
      in_txn = false;
      done = true;
      continue;
    }

    Status body = ParseTxnBodyLine(line, db, builder.get());
    if (!body.ok()) return error(body.message());
  }
  if (in_txn) return Status::InvalidArgument("unterminated txn block");
  if (!done) return Status::InvalidArgument("empty input: missing 'txn' block");
  auto txn = builder->BuildValidated();
  if (!txn.ok()) return txn.status();
  return std::move(txn).value();
}

std::string SystemToText(const TransactionSystem& system) {
  const DistributedDatabase& db = system.db();
  std::ostringstream out;
  out << "sites " << db.NumSites() << "\n";
  for (EntityId e = 0; e < db.NumEntities(); ++e) {
    out << "entity " << db.NameOf(e) << " " << db.SiteOf(e) << "\n";
  }
  for (int i = 0; i < system.NumTransactions(); ++i) {
    out << "\n" << TransactionToText(system.txn(i));
  }
  return out.str();
}

std::string TransactionToText(const Transaction& txn) {
  const DistributedDatabase& db = txn.db();
  std::ostringstream out;
  out << "txn " << txn.name() << " nochain\n";
  for (StepId s = 0; s < txn.NumSteps(); ++s) {
    const Step& step = txn.GetStep(s);
    const char* kind =
        step.kind == StepKind::kLock ? (step.shared ? "slock" : "lock")
        : step.kind == StepKind::kUpdate
            ? "update"
            : (step.shared ? "sunlock" : "unlock");
    out << "  " << kind << " " << db.NameOf(step.entity) << "  # step "
        << s << "\n";
  }
  for (StepId s = 0; s < txn.NumSteps(); ++s) {
    for (NodeId v : txn.order().OutNeighbors(s)) {
      out << "  edge " << s << " " << v << "\n";
    }
  }
  out << "end\n";
  return out.str();
}

}  // namespace dislock
