#include "txn/linear_extension.h"

#include <algorithm>

namespace dislock {

namespace {

/// Shared backtracking core: enumerates extensions, calling `visit` on each
/// complete prefix. Returns false if stopped early by the visitor, true
/// otherwise. `budget` counts down; hitting zero aborts with *exhausted set.
bool Backtrack(const Digraph& order, std::vector<int>* indegree,
               std::vector<StepId>* prefix, int64_t* budget, bool* exhausted,
               const LinearExtensionVisitor& visit) {
  const int n = order.NumNodes();
  if (static_cast<int>(prefix->size()) == n) {
    if (*budget <= 0) {
      *exhausted = true;
      return false;
    }
    --*budget;
    return visit(*prefix);
  }
  for (StepId s = 0; s < n; ++s) {
    if ((*indegree)[s] != 0) continue;
    (*indegree)[s] = -1;  // mark emitted
    for (NodeId t : order.OutNeighbors(s)) --(*indegree)[t];
    prefix->push_back(s);
    bool keep_going =
        Backtrack(order, indegree, prefix, budget, exhausted, visit);
    prefix->pop_back();
    for (NodeId t : order.OutNeighbors(s)) ++(*indegree)[t];
    (*indegree)[s] = 0;
    if (!keep_going) return false;
  }
  return true;
}

std::vector<int> InitialIndegrees(const Digraph& order) {
  std::vector<int> indegree(order.NumNodes(), 0);
  for (NodeId u = 0; u < order.NumNodes(); ++u) {
    for (NodeId v : order.OutNeighbors(u)) ++indegree[v];
  }
  return indegree;
}

}  // namespace

Status EnumerateLinearExtensions(const Transaction& txn,
                                 int64_t max_extensions,
                                 const LinearExtensionVisitor& visit) {
  std::vector<int> indegree = InitialIndegrees(txn.order());
  std::vector<StepId> prefix;
  prefix.reserve(txn.NumSteps());
  int64_t budget = max_extensions;
  bool exhausted = false;
  Backtrack(txn.order(), &indegree, &prefix, &budget, &exhausted, visit);
  if (exhausted) {
    return Status::ResourceExhausted(
        "more linear extensions than the configured cap");
  }
  return Status::OK();
}

int64_t CountLinearExtensions(const Transaction& txn, int64_t cap) {
  int64_t count = 0;
  Status st = EnumerateLinearExtensions(
      txn, cap, [&count](const std::vector<StepId>&) {
        ++count;
        return true;
      });
  (void)st;  // ResourceExhausted simply means "at least cap".
  return count;
}

std::vector<StepId> RandomLinearExtension(const Transaction& txn, Rng* rng) {
  DISLOCK_CHECK(rng != nullptr);
  std::vector<int> indegree = InitialIndegrees(txn.order());
  std::vector<StepId> available;
  for (StepId s = 0; s < txn.NumSteps(); ++s) {
    if (indegree[s] == 0) available.push_back(s);
  }
  std::vector<StepId> out;
  out.reserve(txn.NumSteps());
  while (!available.empty()) {
    size_t i = rng->Index(available.size());
    StepId s = available[i];
    available[i] = available.back();
    available.pop_back();
    out.push_back(s);
    for (NodeId t : txn.order().OutNeighbors(s)) {
      if (--indegree[t] == 0) available.push_back(t);
    }
  }
  DISLOCK_CHECK_EQ(static_cast<int>(out.size()), txn.NumSteps());
  return out;
}

bool IsLinearExtension(const Transaction& txn,
                       const std::vector<StepId>& order) {
  if (static_cast<int>(order.size()) != txn.NumSteps()) return false;
  std::vector<int> position(txn.NumSteps(), -1);
  for (int i = 0; i < static_cast<int>(order.size()); ++i) {
    StepId s = order[i];
    if (!txn.ValidStep(s) || position[s] != -1) return false;
    position[s] = i;
  }
  for (StepId s = 0; s < txn.NumSteps(); ++s) {
    for (NodeId t : txn.order().OutNeighbors(s)) {
      if (position[s] > position[t]) return false;
    }
  }
  return true;
}

Result<Transaction> Linearize(const Transaction& txn,
                              const std::vector<StepId>& order) {
  if (!IsLinearExtension(txn, order)) {
    return Status::InvalidArgument(
        "order is not a linear extension of the transaction");
  }
  Transaction total(&txn.db(), txn.name() + "#total");
  for (StepId s = 0; s < txn.NumSteps(); ++s) {
    const Step& step = txn.GetStep(s);
    total.AddStep(step.kind, step.entity, step.shared);
  }
  for (size_t i = 1; i < order.size(); ++i) {
    total.AddPrecedence(order[i - 1], order[i]);
  }
  return total;
}

}  // namespace dislock
