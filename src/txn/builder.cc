#include "txn/builder.h"

#include "util/logging.h"

namespace dislock {

TransactionBuilder::TransactionBuilder(const DistributedDatabase* db,
                                       std::string name, bool auto_site_chain)
    : txn_(db, std::move(name)),
      auto_site_chain_(auto_site_chain),
      last_at_site_(db->NumSites(), kInvalidStep) {}

EntityId TransactionBuilder::MustFind(const std::string& name) const {
  auto e = txn_.db().Find(name);
  DISLOCK_CHECK(e.ok()) << "unknown entity '" << name << "'";
  return e.value();
}

StepId TransactionBuilder::Add(StepKind kind, EntityId entity, bool shared) {
  StepId id = txn_.AddStep(kind, entity, shared);
  if (auto_site_chain_) {
    SiteId site = txn_.db().SiteOf(entity);
    if (site >= static_cast<SiteId>(last_at_site_.size())) {
      last_at_site_.resize(site + 1, kInvalidStep);
    }
    if (last_at_site_[site] != kInvalidStep) {
      txn_.AddPrecedence(last_at_site_[site], id);
    }
    last_at_site_[site] = id;
  }
  return id;
}

StepId TransactionBuilder::Lock(const std::string& entity) {
  return Add(StepKind::kLock, MustFind(entity));
}

StepId TransactionBuilder::Unlock(const std::string& entity) {
  return Add(StepKind::kUnlock, MustFind(entity));
}

StepId TransactionBuilder::Update(const std::string& entity) {
  return Add(StepKind::kUpdate, MustFind(entity));
}

StepId TransactionBuilder::LockShared(const std::string& entity) {
  return Add(StepKind::kLock, MustFind(entity), /*shared=*/true);
}

StepId TransactionBuilder::UnlockShared(const std::string& entity) {
  return Add(StepKind::kUnlock, MustFind(entity), /*shared=*/true);
}

StepId TransactionBuilder::LockUpdateUnlock(const std::string& entity) {
  EntityId e = MustFind(entity);
  StepId l = Add(StepKind::kLock, e);
  StepId u = Add(StepKind::kUpdate, e);
  StepId ul = Add(StepKind::kUnlock, e);
  // With auto_site_chain these arcs already exist; add them explicitly so the
  // triple is ordered even with chaining disabled.
  txn_.AddPrecedence(l, u);
  txn_.AddPrecedence(u, ul);
  return l;
}

TransactionBuilder& TransactionBuilder::Edge(StepId a, StepId b) {
  txn_.AddPrecedence(a, b);
  return *this;
}

TransactionBuilder& TransactionBuilder::Chain(
    std::initializer_list<StepId> steps) {
  StepId prev = kInvalidStep;
  for (StepId s : steps) {
    if (prev != kInvalidStep) txn_.AddPrecedence(prev, s);
    prev = s;
  }
  return *this;
}

Result<Transaction> TransactionBuilder::BuildValidated(
    const ValidateOptions& options) const {
  Status st = ValidateTransaction(txn_, options);
  if (!st.ok()) return st;
  return txn_;
}

}  // namespace dislock
