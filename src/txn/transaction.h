#ifndef DISLOCK_TXN_TRANSACTION_H_
#define DISLOCK_TXN_TRANSACTION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "graph/reachability.h"
#include "txn/database.h"
#include "txn/step.h"
#include "util/status.h"

namespace dislock {

/// A (possibly distributed) transaction T = (S, A, e): a set of steps S,
/// a partial order A on S (stored as a DAG of precedence arcs whose
/// transitive closure is the partial order), and a modifies-function e
/// mapping each step to an entity (Section 2 of the paper).
///
/// The model requires steps on entities stored at the same site to be
/// totally ordered; with one site this degenerates to the classical totally
/// ordered (straight-line) transaction. This requirement is checked by
/// ValidateTransaction(), not enforced during construction, so invalid
/// objects can be built and rejected in tests.
///
/// Transactions are value types (copyable); the Theorem 2 closure operation
/// works on copies to which it adds precedences.
///
/// Const access is thread-safe: the derived structures a query needs
/// (reachability over the step DAG, the touched-entity and touched-site
/// sets) are either maintained eagerly on AddStep or built lazily behind a
/// mutex with a lock-free fast path, so the parallel safety engine can run
/// many pair/cycle analyses over the same transactions concurrently.
/// Mutation (AddStep/AddPrecedence) must still be externally synchronized
/// with respect to readers, as for any value type.
class Transaction {
 public:
  /// Creates an empty transaction over `db`. `db` must outlive this object.
  explicit Transaction(const DistributedDatabase* db, std::string name = "T");

  Transaction(const Transaction& other);
  Transaction& operator=(const Transaction& other);
  Transaction(Transaction&& other) noexcept;
  Transaction& operator=(Transaction&& other) noexcept;

  /// Appends a step; returns its id. Ids are dense [0, NumSteps()).
  /// `shared` marks read locks/unlocks (ignored for updates).
  StepId AddStep(StepKind kind, EntityId entity, bool shared = false);

  /// True iff entity e's lock section here is a shared (read) section.
  /// False when e is not locked or the section is exclusive.
  bool IsSharedSection(EntityId e) const;

  /// Adds the precedence `before` -> `after` (an arc of A). Duplicate arcs
  /// are ignored. Adding an arc that creates a cycle is allowed here and
  /// rejected by ValidateTransaction().
  void AddPrecedence(StepId before, StepId after);

  int NumSteps() const { return static_cast<int>(steps_.size()); }
  const Step& GetStep(StepId s) const {
    DISLOCK_CHECK(ValidStep(s));
    return steps_[s];
  }
  bool ValidStep(StepId s) const { return s >= 0 && s < NumSteps(); }

  const DistributedDatabase& db() const { return *db_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// The precedence DAG (arcs, not the full closure).
  const Digraph& order() const { return order_; }

  /// True iff `a` strictly precedes `b` in the partial order (transitive).
  bool Precedes(StepId a, StepId b) const;
  /// True iff a == b or a precedes b.
  bool PrecedesOrEqual(StepId a, StepId b) const;
  /// True iff neither precedes the other (the steps are concurrent).
  bool Concurrent(StepId a, StepId b) const;

  /// The `lock x` step, or kInvalidStep if x is not locked here. If the
  /// transaction is malformed and locks x twice, the first added step is
  /// returned (validation reports the malformation).
  StepId LockStep(EntityId e) const;
  /// The `unlock x` step, or kInvalidStep.
  StepId UnlockStep(EntityId e) const;
  /// All `update x` steps, in insertion order.
  std::vector<StepId> UpdateSteps(EntityId e) const;

  /// Entities with both a lock and an unlock step here, ascending.
  /// Maintained incrementally on AddStep (the multi-transaction analysis
  /// consults it O(k^2) times per run), so this is O(1).
  const std::vector<EntityId>& LockedEntities() const {
    return locked_entities_;
  }
  /// Entities touched by any step here, ascending. O(1), see above.
  const std::vector<EntityId>& TouchedEntities() const {
    return touched_entities_;
  }
  /// Distinct sites hosting the touched entities, ascending. O(1); lets
  /// SitesSpanned merge two site lists instead of re-deriving them from the
  /// entity sets on every pair test.
  const std::vector<SiteId>& TouchedSites() const { return touched_sites_; }

  /// Number of lock steps added for entity e (for validation; > 1 is
  /// malformed).
  int LockCount(EntityId e) const;
  int UnlockCount(EntityId e) const;

  /// Site of the entity of step `s`.
  SiteId SiteOfStep(StepId s) const {
    return db_->SiteOf(GetStep(s).entity);
  }

  /// Human-readable multi-line dump (steps per site, then arcs).
  std::string ToString() const;

  /// Renders one step, e.g. "Lx", "Uy", "w".
  std::string StepString(StepId s) const {
    return StepToString(GetStep(s), *db_);
  }

 private:
  const Reachability& Reach() const;
  void InvalidateReach();

  const DistributedDatabase* db_;
  std::string name_;
  std::vector<Step> steps_;
  Digraph order_;
  // Per-entity indexes, maintained on AddStep.
  std::vector<StepId> lock_step_;    // indexed by EntityId; kInvalidStep
  std::vector<StepId> unlock_step_;  // if absent
  std::vector<int> lock_count_;
  std::vector<int> unlock_count_;
  // Sorted distinct-entity/site summaries, maintained on AddStep.
  std::vector<EntityId> locked_entities_;
  std::vector<EntityId> touched_entities_;
  std::vector<SiteId> touched_sites_;
  // Reachability over order_, rebuilt lazily after mutations. Double-checked:
  // readers take the lock-free acquire path once built; the build (and the
  // invalidation on mutation) happens under reach_mu_.
  mutable std::mutex reach_mu_;
  mutable std::shared_ptr<const Reachability> reach_;
  mutable std::atomic<const Reachability*> reach_fast_{nullptr};
};

}  // namespace dislock

#endif  // DISLOCK_TXN_TRANSACTION_H_
