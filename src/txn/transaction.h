#ifndef DISLOCK_TXN_TRANSACTION_H_
#define DISLOCK_TXN_TRANSACTION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "graph/reachability.h"
#include "txn/database.h"
#include "txn/step.h"
#include "util/status.h"

namespace dislock {

/// A (possibly distributed) transaction T = (S, A, e): a set of steps S,
/// a partial order A on S (stored as a DAG of precedence arcs whose
/// transitive closure is the partial order), and a modifies-function e
/// mapping each step to an entity (Section 2 of the paper).
///
/// The model requires steps on entities stored at the same site to be
/// totally ordered; with one site this degenerates to the classical totally
/// ordered (straight-line) transaction. This requirement is checked by
/// ValidateTransaction(), not enforced during construction, so invalid
/// objects can be built and rejected in tests.
///
/// Transactions are value types (copyable); the Theorem 2 closure operation
/// works on copies to which it adds precedences.
class Transaction {
 public:
  /// Creates an empty transaction over `db`. `db` must outlive this object.
  explicit Transaction(const DistributedDatabase* db, std::string name = "T");

  /// Appends a step; returns its id. Ids are dense [0, NumSteps()).
  /// `shared` marks read locks/unlocks (ignored for updates).
  StepId AddStep(StepKind kind, EntityId entity, bool shared = false);

  /// True iff entity e's lock section here is a shared (read) section.
  /// False when e is not locked or the section is exclusive.
  bool IsSharedSection(EntityId e) const;

  /// Adds the precedence `before` -> `after` (an arc of A). Duplicate arcs
  /// are ignored. Adding an arc that creates a cycle is allowed here and
  /// rejected by ValidateTransaction().
  void AddPrecedence(StepId before, StepId after);

  int NumSteps() const { return static_cast<int>(steps_.size()); }
  const Step& GetStep(StepId s) const {
    DISLOCK_CHECK(ValidStep(s));
    return steps_[s];
  }
  bool ValidStep(StepId s) const { return s >= 0 && s < NumSteps(); }

  const DistributedDatabase& db() const { return *db_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// The precedence DAG (arcs, not the full closure).
  const Digraph& order() const { return order_; }

  /// True iff `a` strictly precedes `b` in the partial order (transitive).
  bool Precedes(StepId a, StepId b) const;
  /// True iff a == b or a precedes b.
  bool PrecedesOrEqual(StepId a, StepId b) const;
  /// True iff neither precedes the other (the steps are concurrent).
  bool Concurrent(StepId a, StepId b) const;

  /// The `lock x` step, or kInvalidStep if x is not locked here. If the
  /// transaction is malformed and locks x twice, the first added step is
  /// returned (validation reports the malformation).
  StepId LockStep(EntityId e) const;
  /// The `unlock x` step, or kInvalidStep.
  StepId UnlockStep(EntityId e) const;
  /// All `update x` steps, in insertion order.
  std::vector<StepId> UpdateSteps(EntityId e) const;

  /// Entities with both a lock and an unlock step here, ascending.
  std::vector<EntityId> LockedEntities() const;
  /// Entities touched by any step here, ascending.
  std::vector<EntityId> TouchedEntities() const;

  /// Number of lock steps added for entity e (for validation; > 1 is
  /// malformed).
  int LockCount(EntityId e) const;
  int UnlockCount(EntityId e) const;

  /// Site of the entity of step `s`.
  SiteId SiteOfStep(StepId s) const {
    return db_->SiteOf(GetStep(s).entity);
  }

  /// Human-readable multi-line dump (steps per site, then arcs).
  std::string ToString() const;

  /// Renders one step, e.g. "Lx", "Uy", "w".
  std::string StepString(StepId s) const {
    return StepToString(GetStep(s), *db_);
  }

 private:
  const Reachability& Reach() const;

  const DistributedDatabase* db_;
  std::string name_;
  std::vector<Step> steps_;
  Digraph order_;
  // Per-entity indexes, maintained on AddStep.
  std::vector<StepId> lock_step_;    // indexed by EntityId; kInvalidStep
  std::vector<StepId> unlock_step_;  // if absent
  std::vector<int> lock_count_;
  std::vector<int> unlock_count_;
  // Reachability over order_, rebuilt lazily after mutations.
  mutable std::shared_ptr<const Reachability> reach_;
};

}  // namespace dislock

#endif  // DISLOCK_TXN_TRANSACTION_H_
