#ifndef DISLOCK_TXN_VALIDATE_H_
#define DISLOCK_TXN_VALIDATE_H_

#include "txn/transaction.h"
#include "util/status.h"

namespace dislock {

/// Options controlling how strictly the Section 2 well-formedness rules are
/// enforced.
struct ValidateOptions {
  /// Paper rule: "If these [lock/unlock] steps exist there is at least one
  /// update x step between them". The paper's own figures omit update steps
  /// ("we omit the update steps, as they do not affect safety"), so this
  /// defaults to off; turn it on to check fully spelled-out transactions.
  bool require_update_between_locks = false;

  /// Paper rule: "There is no update x step not surrounded by such a
  /// [lock/unlock] pair". On by default; an update outside a lock section is
  /// an incorrectly locked transaction.
  bool forbid_unlocked_updates = true;
};

/// Checks the well-formedness of a locked transaction per Section 2:
///   * the precedence relation is acyclic (a genuine partial order);
///   * steps on entities stored at the same site are totally ordered;
///   * each entity has at most one lock and at most one unlock step,
///     locks and unlocks come in pairs, and the lock precedes the unlock;
///   * update placement per `options`.
/// Returns OK or an InvalidModel status naming the first violation.
Status ValidateTransaction(const Transaction& txn,
                           const ValidateOptions& options = ValidateOptions());

}  // namespace dislock

#endif  // DISLOCK_TXN_VALIDATE_H_
